"""Bottom-up evaluation of Datalog programs.

The engine computes the stratified minimal model of a program by iterating
its rules to a fixpoint, one stratum at a time.  Three fixpoint strategies
are provided, forming the ablation ladder the E9 benchmark measures:

* **naive** — every rule is re-joined against the entire database on every
  iteration, with nested-loop scans; the O(|DB|^k)-per-rule baseline;
* **semi-naive** — rules are joined against the *delta* (facts new in the
  previous round) using the textbook non-duplicating decomposition: for a
  rule with positive body literals ``p1 … pk``, one join pass per delta
  position *i* evaluates ``p1 … p(i-1)`` against the pre-round database,
  ``pi`` against the delta and the rest against the full database, so each
  new derivation is produced by exactly one pass.  Passes whose delta
  position holds a predicate absent from the delta are skipped entirely;
* **indexed** (the default) — semi-naive evaluation driven by a
  :class:`~repro.datalog.index.FactIndex`: facts are hashed per
  ``(predicate, arity)`` relation and per argument position, body literals
  are reordered greedily by estimated selectivity (delta literal first, then
  whichever remaining literal has the most bound argument positions and the
  smallest surviving-fact estimate), and each join step probes the index
  with the currently bound prefix instead of scanning the fact set;
* **parallel** — the indexed strategy over a hash-partitioned
  :class:`~repro.datalog.shard.ShardedFactIndex`, scheduled by
  :class:`~repro.datalog.parallel.ParallelScheduler`: independent
  components of the dependency condensation evaluate concurrently, and a
  recursive component's delta-join passes fan out across shards on a worker
  pool, with a deterministic reduction so the least model is identical to
  every sequential strategy (``shards=`` / ``workers=`` tune the layout;
  ``engine.parallel_statistics`` reports waves/widths/shard tasks).

In every strategy, negated body literals are deferred until the join prefix
has bound all of their variables, so range-restricted rules evaluate
correctly regardless of the textual order of their body (rules that cannot
be made ground this way are rejected with
:class:`~repro.exceptions.UnsafeRuleError` — normally already at
:class:`~repro.datalog.program.DatalogRule` construction).

Negation is interpreted as stratified negation-as-failure.  Stratification
is exact: the predicate dependency graph is condensed into strongly
connected components and a program is rejected with
:class:`~repro.exceptions.StratificationError` precisely when some negative
edge lies inside a component (negation through recursion); stratum numbers
are then assigned in one dependencies-first pass over the condensation.
For definite programs the result is the least Herbrand model; for stratified
programs it is the standard perfect model, which coincides with the
completion/closed-world readings the paper discusses for "Prolog-like"
databases.

``least_model()`` is computed once and cached (keyed on the program's
fact/rule content), so ``query()`` and ``holds()`` do not recompute the
fixpoint on every call.  For update-heavy callers,
:class:`~repro.datalog.incremental.MaterializedModel` maintains the model
under EDB insertions and deletions at delta cost and pushes it back into
this cache via :meth:`DatalogEngine.install_model`.

``query()`` is *goal-directed* by default: when no model is cached (or
maintained), a single goal is answered by magic-set rewriting
(:mod:`repro.datalog.magic`) — the fixpoint then only derives the
goal-relevant subprogram, O(relevant facts) instead of O(least model).
Magic work is cached per program content: the rewrite template per
``(predicate, adornment)`` and the evaluated goal-relevant model per
``(predicate, adornment, bound constants)``, so repeated point queries
share their sub-goal work (``result.cached`` says a cache answered).
The join planner of the indexed strategy is fed by observed bucket-size
histograms (:mod:`repro.datalog.stats`) rather than the uniform-distribution
estimate, refreshed every fixpoint round.
"""

import warnings
from collections import defaultdict

from repro.datalog.analyze import (
    analyze_program,
    condensation_of,
    format_cycle,
    negative_cycle,
    strongly_connected_components,
)
from repro.datalog.columnar import (
    ColumnarFactIndex,
    RowStore,
    columnar_fixpoint,
    decode_world,
)
from repro.datalog.index import FactIndex
from repro.datalog.interner import Interner
from repro.datalog.stats import JoinStatistics
from repro.exceptions import (
    MagicRewriteError,
    ProgramAnalysisError,
    ProgramAnalysisWarning,
    StratificationError,
    UnsafeRuleError,
)
from repro.logic.syntax import Atom
from repro.logic.terms import Parameter, Variable
from repro.obs.metrics import MetricsFacade, MetricsRegistry, facade_fields
from repro.obs.provenance import ProvenanceError, ProvenanceRecorder, derivation_tree
from repro.obs.tracing import NOOP_TRACER
from repro.semantics.worlds import World

STRATEGIES = ("naive", "semi-naive", "indexed", "parallel")
PLANNERS = ("histogram", "uniform")
STORAGES = ("objects", "columnar")
QUERY_MODES = ("auto", "magic", "full")
CHECK_MODES = ("off", "warn", "strict")

#: how many evaluated goal-relevant models ``query()`` keeps per engine
#: (templates are unbounded — one per reachable adornment, a small set).
MAGIC_MODEL_CACHE_SIZE = 32


@facade_fields
class EvaluationStatistics(MetricsFacade):
    """Counters describing one fixpoint computation.

    ``rule_applications`` counts actual join passes executed: one per rule
    per round for naive (and first-round semi-naive) evaluation, and one per
    *delta position actually evaluated* for semi-naive rounds.  Delta passes
    skipped because the delta holds no fact of the pass's predicate are
    tallied separately in ``delta_passes_skipped``.

    A façade over :class:`~repro.obs.metrics.Counter` instruments (see
    :class:`~repro.obs.metrics.MetricsFacade`): field reads and writes go to
    ``engine.<field>`` counters of the owning engine's registry, so the same
    numbers appear in :meth:`DatalogEngine.metrics` — while construction,
    field access, equality and ``repr`` behave exactly as the dataclass this
    replaced.
    """

    FIELDS = (
        "iterations",
        "rule_applications",
        "facts_derived",
        "strata",
        "delta_passes_skipped",
    )
    PREFIX = "engine."


class QueryResult(list):
    """The answer to one :meth:`DatalogEngine.query` call.

    Behaves as a plain list of ``{Variable: Parameter}`` binding dicts (one
    per matching fact), so existing callers keep working, and additionally
    carries how the answer was computed:

    * ``goal`` — the query atom; ``adornment`` — its binding pattern
      (``"bf"``-style, see :func:`repro.datalog.magic.adornment_of`);
    * ``mode`` — ``"magic"`` (goal-directed rewrite), ``"full"`` (answered
      from the full least model), ``"edb"`` (direct probe of an extensional
      predicate) or ``"materialized"`` (probe of an incrementally
      maintained model);
    * ``facts_touched`` — how many facts the evaluation materialized or
      scanned to produce the bindings; ``join_passes`` / ``iterations`` /
      ``facts_derived`` — the fixpoint counters of the evaluation run
      performed *for this query* (all zero when a cached or maintained
      model answered it);
    * ``fallback_reason`` — why an ``"auto"`` query fell back from magic to
      full evaluation (``None`` when it did not);
    * ``cached`` — True when a ``"magic"`` answer was served from the
      engine's per-program magic cache (no fixpoint ran for this query).
    """

    def __init__(self, bindings=(), *, goal=None, mode="full", adornment=None,
                 facts_touched=0, join_passes=0, iterations=0,
                 facts_derived=0, fallback_reason=None, cached=False):
        super().__init__(bindings)
        self.goal = goal
        self.mode = mode
        self.adornment = adornment
        self.facts_touched = facts_touched
        self.join_passes = join_passes
        self.iterations = iterations
        self.facts_derived = facts_derived
        self.fallback_reason = fallback_reason
        self.cached = cached

    @property
    def bindings(self):
        """The binding dicts as a plain list (the result itself is also a
        list; this property exists for readable call sites)."""
        return list(self)

    def __repr__(self):
        return (
            f"QueryResult({list.__repr__(self)}, mode={self.mode!r}, "
            f"adornment={self.adornment!r}, facts_touched={self.facts_touched}, "
            f"join_passes={self.join_passes})"
        )


class DatalogEngine:
    """Evaluates a :class:`~repro.datalog.program.DatalogProgram`.

    ``strategy`` selects the fixpoint machinery (one of
    :data:`STRATEGIES`); ``planner`` selects the join-planning estimate of
    the indexed strategy — ``"histogram"`` (the default: observed
    bucket-size histograms, see :mod:`repro.datalog.stats`) or
    ``"uniform"`` (the distinct-value-count estimate of
    :meth:`~repro.datalog.index.FactIndex.selectivity`, kept as an
    ablation baseline).  With ``strategy="parallel"``, ``shards`` sets the
    partition width of the backing
    :class:`~repro.datalog.shard.ShardedFactIndex` (default
    :data:`~repro.datalog.shard.DEFAULT_SHARDS`) and ``workers`` the thread
    pool size (default: one per shard, capped by the CPU count); both are
    rejected under the sequential strategies.

    ``storage`` selects the fact representation (one of :data:`STORAGES`):
    ``"objects"`` (hash-sets of :class:`~repro.logic.syntax.Atom`) or
    ``"columnar"`` (constants interned to dense integer ids, facts stored
    as id rows and joined by generated id-space loops — see
    :mod:`repro.datalog.columnar`).  The two produce identical models,
    query answers and evaluation counters; columnar is the fast path for
    large fact sets and is available under the ``indexed`` and ``parallel``
    strategies (the scanning strategies are set-based baselines and reject
    it).  The default (``storage=None``) resolves to ``"columnar"`` under
    those two strategies and ``"objects"`` under the scanning baselines.

    ``check`` selects the static-analysis mode (one of :data:`CHECK_MODES`,
    see :mod:`repro.datalog.analyze`): ``"warn"`` (the default) runs the
    analyzer once per program content at ``least_model()`` /
    ``least_index()`` / ``query()`` entry, records its findings on
    ``engine.diagnostics``, surfaces error-severity ones through
    :class:`~repro.exceptions.ProgramAnalysisWarning` and prunes rules the
    analyzer proves can never fire (a semantics-preserving rewrite applied
    before stratification, magic rewriting and shard scheduling, so every
    strategy inherits it); ``"strict"`` runs the analysis eagerly at
    construction and raises :class:`~repro.exceptions.ProgramAnalysisError`
    on *any* non-informational finding, before evaluation starts;
    ``"off"`` skips the analyzer entirely (``engine.diagnostics`` stays
    empty and nothing is pruned).

    ``tracer`` attaches a :class:`~repro.obs.tracing.Tracer` — fixpoint
    rounds, join passes and magic rewrites then record spans (the default
    is the shared no-op tracer, whose cost the observability benchmark
    bounds at ≤5% of a fixpoint).  ``provenance=True`` (indexed strategy
    only) records one rule-level derivation edge per derived fact during
    evaluation, enabling :meth:`explain`; it is off by default because the
    edge store is O(derived facts).  :meth:`metrics` snapshots the
    engine's metrics registry, which the ``statistics`` /
    ``parallel_statistics`` façades and the ``query.*`` counters share.
    """

    def __init__(self, program, strategy="indexed", planner="histogram",
                 shards=None, workers=None, storage=None, check="warn",
                 tracer=None, provenance=False):
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {', '.join(STRATEGIES)}")
        if planner not in PLANNERS:
            raise ValueError(f"planner must be one of {', '.join(PLANNERS)}")
        if storage is None:
            storage = "columnar" if strategy in ("indexed", "parallel") else "objects"
        if storage not in STORAGES:
            raise ValueError(f"storage must be one of {', '.join(STORAGES)}")
        if storage == "columnar" and strategy not in ("indexed", "parallel"):
            raise ValueError(
                "columnar storage requires the indexed or parallel strategy"
            )
        if strategy == "parallel":
            from repro.datalog.shard import DEFAULT_SHARDS

            shards = DEFAULT_SHARDS if shards is None else int(shards)
            if shards < 1:
                raise ValueError(f"shards must be >= 1, got {shards}")
            if workers is not None:
                workers = int(workers)
                if workers < 1:
                    raise ValueError(f"workers must be >= 1, got {workers}")
        elif shards is not None or workers is not None:
            raise ValueError("shards/workers are only meaningful with strategy='parallel'")
        if check not in CHECK_MODES:
            raise ValueError(f"check must be one of {', '.join(CHECK_MODES)}")
        if provenance and strategy != "indexed":
            raise ValueError(
                "provenance recording requires the indexed strategy "
                "(objects or columnar storage)"
            )
        self.program = program
        self.strategy = strategy
        self.planner = planner
        self.shards = shards
        self.workers = workers
        self.storage = storage
        self.tracer = NOOP_TRACER if tracer is None else tracer
        # One symbol table per engine: append-only, so ids stay stable
        # across evaluations; the compiled-join cache shares its lifetime.
        self.interner = Interner() if storage == "columnar" else None
        self._compiled_cache = {} if storage == "columnar" else None
        self._metrics = MetricsRegistry()
        self.statistics = EvaluationStatistics(registry=self._metrics)
        self.planner_statistics = JoinStatistics()
        # Provenance: one derivation edge per derived fact, recorded only
        # while _provenance_sink is armed (engine-owned fixpoints; the
        # incremental maintainer's joins never record).
        self.provenance = bool(provenance)
        self._provenance = ProvenanceRecorder() if provenance else None
        self._provenance_key = None
        self._provenance_sink = None
        # Filled per parallel evaluation by ParallelScheduler (waves, wave
        # widths, shard fan-out tasks); None under the sequential strategies.
        self.parallel_statistics = None
        # query()'s magic cache: rewrite templates per (predicate, arity,
        # adornment) and evaluated goal-relevant models per (..., bound
        # constants), both valid for exactly one program content key.
        self._magic_templates = {}
        self._magic_models = {}
        self._magic_key = None
        # Static analysis state (see ensure_checked): the cached
        # ProgramAnalysis, the program content it was computed for, and the
        # effective (never-fire-pruned) program every consumer of the rule
        # set reads through _effective_program().
        self.check = check
        self.diagnostics = ()
        self._analysis = None
        self._analysis_key = None
        self._effective = None
        self._strata_rules = None
        if check == "strict":
            # Reject defective programs before any stratification work —
            # raises ProgramAnalysisError, carrying the diagnostics.
            self.ensure_checked()
        self._refresh_strata(self._program_key())
        self._model = None
        self._model_key = None
        # Set by MaterializedModel: a zero-argument callable that refreshes
        # the cache (via install_model) from incrementally maintained state,
        # so a cache miss costs O(delta) instead of a fixpoint.
        self._model_provider = None

    # -- static analysis ----------------------------------------------------
    def ensure_checked(self):
        """Run (or reuse) the static analysis of
        :mod:`repro.datalog.analyze` according to ``self.check``; returns
        the :class:`~repro.datalog.analyze.ProgramAnalysis` (``None`` under
        ``check="off"``).

        The analysis is cached per program content (plus declared outputs)
        and re-run only when either changes.  Under ``"strict"`` any
        non-informational diagnostic raises
        :class:`~repro.exceptions.ProgramAnalysisError`; under ``"warn"``
        error-severity diagnostics are surfaced as
        :class:`~repro.exceptions.ProgramAnalysisWarning` and evaluation
        proceeds.  Either way the analyzer's never-fire rules are pruned
        from the *effective* program that stratification, magic planning
        and the parallel scheduler read (a semantics-preserving rewrite —
        only rules with a provably empty positive body predicate go).
        """
        if self.check == "off":
            return None
        key = (self._program_key(), frozenset(getattr(self.program, "outputs", ())))
        if self._analysis is not None and self._analysis_key == key:
            return self._analysis
        analysis = analyze_program(self.program)
        self._analysis = analysis
        self._analysis_key = key
        self.diagnostics = analysis.diagnostics
        if self.check == "strict":
            violations = analysis.strict_violations()
            if violations:
                raise ProgramAnalysisError(
                    f"program rejected by static analysis ({len(violations)} "
                    "finding(s)): " + "; ".join(str(d) for d in violations[:3])
                    + ("; ..." if len(violations) > 3 else ""),
                    diagnostics=violations,
                )
        else:
            for diagnostic in analysis.errors():
                warnings.warn(str(diagnostic), ProgramAnalysisWarning, stacklevel=3)
        self._effective = analysis.pruned_program()
        if (self._strata_rules is not None
                and tuple(self._effective.rules) != self._strata_rules):
            # Pruning changed the rule set the current strata were built
            # from — rebuild them now so counters stay consistent.
            self._refresh_strata(self._program_key())
        return analysis

    def _effective_program(self):
        """The program evaluation actually runs: the analyzer's pruned copy
        when a check found never-fire rules, the original otherwise (they
        share the fact list either way)."""
        return self._effective if self._effective is not None else self.program

    def _refresh_strata(self, key):
        self._strata = self._stratify()
        self._strata_key = key
        self._strata_rules = tuple(self._effective_program().rules)

    # -- public API ---------------------------------------------------------
    def least_model(self):
        """Compute the (stratified) minimal model and return it as a
        :class:`~repro.semantics.worlds.World`.

        The model is cached: repeated calls (and therefore ``query()`` /
        ``holds()``) re-run the fixpoint only when the program has gained
        facts or rules since the last computation.
        """
        self.ensure_checked()
        key = self._program_key()
        if self._model is not None and self._model_key == key:
            return self._model
        if self._model_provider is not None:
            # An incremental maintainer owns the model: let it bring the
            # cache up to date (O(delta)); fall through to a full fixpoint
            # only if it could not.
            self._model_provider()
            key = self._program_key()
            if self._model is not None and self._model_key == key:
                return self._model
        if self._strata_key != key:
            self._refresh_strata(key)
        self._begin_evaluation()
        with self.tracer.span(
            "engine.least_model", strategy=self.strategy, storage=self.storage
        ):
            try:
                if self.strategy == "parallel":
                    model = self._evaluate_parallel()
                elif self.strategy == "indexed":
                    if self.storage == "columnar":
                        model = self._evaluate_columnar()
                    else:
                        model = self._evaluate_indexed()
                else:
                    model = self._evaluate_scanning()
            finally:
                self._provenance_sink = None
        self._provenance_key = key if self.provenance else None
        self._model = model
        self._model_key = key
        return model

    def least_index(self):
        """Evaluate the fixpoint and return the final fact storage — a
        :class:`~repro.datalog.index.FactIndex`,
        :class:`~repro.datalog.columnar.ColumnarFactIndex` or
        :class:`~repro.datalog.shard.ShardedFactIndex` holding the least
        model's atoms — *without* materialising a
        :class:`~repro.semantics.worlds.World`.

        This is the fixpoint product for index-consuming pipelines (shard
        exchange, feeding another engine, bulk export): skipping the
        World's frozen atom-set construction avoids decoding/validating
        every atom at the API edge, which for large models costs more than
        the fixpoint itself.  Only the ``indexed`` and ``parallel``
        strategies materialise an index; the scanning strategies raise
        ``ValueError``.  The result is freshly evaluated (never cached) and
        must be treated as read-only if the engine is reused.
        """
        if self.strategy not in ("indexed", "parallel"):
            raise ValueError("least_index requires the indexed or parallel strategy")
        self.ensure_checked()
        key = self._program_key()
        if self._strata_key != key:
            self._refresh_strata(key)
        self._begin_evaluation()
        with self.tracer.span(
            "engine.least_index", strategy=self.strategy, storage=self.storage
        ):
            try:
                if self.strategy == "parallel":
                    result = self._parallel_fixpoint()
                elif self.storage == "columnar":
                    result = ColumnarFactIndex.from_store(
                        self._columnar_fixpoint(), self.interner
                    )
                else:
                    result = self._indexed_fixpoint_index()
            finally:
                self._provenance_sink = None
        self._provenance_key = key if self.provenance else None
        return result

    def query(self, atom, mode="auto"):
        """Answer a single goal *atom* (which may mix constants and
        variables); returns a :class:`QueryResult` — a list of
        ``{Variable: Parameter}`` binding dicts plus evaluation counters.

        ``mode`` selects the evaluation path (one of :data:`QUERY_MODES`):

        * ``"full"`` — materialize (or reuse) the full least model and
          match the goal against it;
        * ``"magic"`` — goal-directed: magic-set rewrite
          (:mod:`repro.datalog.magic`) and evaluate only the goal-relevant
          subprogram (extensional goals skip the rewrite and probe the
          facts directly); raises
          :class:`~repro.exceptions.MagicRewriteError` when the rewrite
          loses stratifiability;
        * ``"auto"`` (default) — use the cached/maintained model when one
          is available (O(answers)), probe extensional goals directly,
          otherwise try magic and fall back to full evaluation on
          :class:`~repro.exceptions.MagicRewriteError`
          (``result.fallback_reason`` says why).
        """
        if mode not in QUERY_MODES:
            raise ValueError(f"mode must be one of {', '.join(QUERY_MODES)}")
        self.ensure_checked()
        from repro.datalog import magic

        adornment = magic.adornment_of(atom)
        fallback_reason = None
        if mode != "full":
            cached = self._model is not None and self._model_key == self._program_key()
            maintained = self._model_provider is not None
            extensional = (
                (atom.predicate, len(atom.args)) not in self.program.idb_predicates()
            )
            if extensional and (mode == "magic" or not (cached or maintained)):
                # Extensional goal, no model at hand: the least model holds
                # exactly the EDB facts for it — one arity-filtered,
                # duplicate-collapsing pass over the fact list, without
                # materializing anything.
                arity = len(atom.args)
                facts = {
                    fact.atom
                    for fact in self.program.facts
                    if fact.atom.predicate == atom.predicate
                    and len(fact.atom.args) == arity
                }
                bindings, touched = _match_goal(atom, facts)
                return self._note_query(QueryResult(
                    bindings, goal=atom, mode="edb", adornment=adornment,
                    facts_touched=touched,
                ))
            if not extensional and (mode == "magic" or not (cached or maintained)):
                try:
                    return self._magic_query(atom, adornment)
                except MagicRewriteError as error:
                    if mode == "magic":
                        raise
                    fallback_reason = str(error)
        statistics_before = self.statistics
        model = self.least_model()
        evaluated = self.statistics is not statistics_before
        bindings, touched = _match_goal(atom, model.atoms_for(atom.predicate))
        return self._note_query(QueryResult(
            bindings, goal=atom, mode="full", adornment=adornment,
            facts_touched=len(model) if evaluated else touched,
            join_passes=self.statistics.rule_applications if evaluated else 0,
            iterations=self.statistics.iterations if evaluated else 0,
            facts_derived=self.statistics.facts_derived if evaluated else 0,
            fallback_reason=fallback_reason,
        ))

    def _note_query(self, result):
        """Tally one :meth:`query` answer into the cumulative ``query.*``
        registry counters — the single bookkeeping the per-result
        :class:`QueryResult` numbers and :meth:`metrics` now share."""
        metrics = self._metrics
        metrics.counter("query.calls").inc()
        metrics.counter(f"query.mode.{result.mode}").inc()
        metrics.counter("query.answers").inc(len(result))
        metrics.counter("query.facts_touched").inc(result.facts_touched)
        metrics.counter("query.join_passes").inc(result.join_passes)
        if result.cached:
            metrics.counter("query.cache_hits").inc()
        return result

    def _magic_query(self, atom, adornment):
        """Answer an intensional goal by magic sets, through the engine's
        two-level magic cache.

        Both levels key on the program's content (any fact or rule change
        clears them):

        * **templates** — the adornment/SIP/magic rule set of
          :func:`repro.datalog.magic.plan` per ``(predicate, arity,
          adornment)``; a repeated binding *shape* (same query, different
          constants) skips the rewrite;
        * **models** — the goal-relevant *answer atoms* (the adorned answer
          predicate's slice of the evaluated model; the rest of the inner
          model is never read on a hit and is not retained) per
          ``(predicate, arity, adornment, bound constants)``; a repeated
          point query skips the fixpoint entirely and re-matches the goal
          (``result.cached`` is True, the evaluation counters are zero).
          At most :data:`MAGIC_MODEL_CACHE_SIZE` entries are kept (oldest
          evicted first).

        Raises :class:`~repro.exceptions.MagicRewriteError` exactly when the
        rewrite does; nothing is cached for unrewritable goals.
        """
        from repro.datalog import magic

        key = self._program_key()
        if self._magic_key != key:
            self._magic_templates.clear()
            self._magic_models.clear()
            self._magic_key = key
        arity = len(atom.args)
        seed_args = tuple(arg for arg in atom.args if not isinstance(arg, Variable))
        model_key = (atom.predicate, arity, adornment, seed_args)
        answer_atoms = self._magic_models.get(model_key)
        if answer_atoms is not None:
            bindings, touched = _match_goal(atom, answer_atoms)
            return self._note_query(QueryResult(
                bindings, goal=atom, mode="magic", adornment=adornment,
                facts_touched=touched, cached=True,
            ))
        template_key = (atom.predicate, arity, adornment)
        template = self._magic_templates.get(template_key)
        if template is None:
            # Plan against the effective (never-fire-pruned) program so the
            # rewrite never specializes provably dead rules.
            with self.tracer.span(
                "magic.rewrite", goal=atom.predicate, adornment=adornment
            ):
                template = magic.plan(self._effective_program(), atom)
            self._magic_templates[template_key] = template
        magic_program = magic.instantiate(template, self.program, atom)
        # shards/workers are None under the sequential strategies, which the
        # constructor accepts as "not set".  The rewrite output is generated
        # code — full of benign duplicates by construction — so the inner
        # engine skips the static analyzer.
        inner = DatalogEngine(
            magic_program.program, strategy=self.strategy, planner=self.planner,
            shards=self.shards, workers=self.workers, storage=self.storage,
            check="off", tracer=self.tracer,
        )
        with self.tracer.span(
            "magic.evaluate", goal=atom.predicate, adornment=adornment
        ):
            model = inner.least_model()
        answers = magic_program.answers(model)
        while len(self._magic_models) >= MAGIC_MODEL_CACHE_SIZE:
            self._magic_models.pop(next(iter(self._magic_models)))
        self._magic_models[model_key] = tuple(
            model.atoms_for(magic_program.answer_predicate)
        )
        return self._note_query(QueryResult(
            answers, goal=atom, mode="magic", adornment=adornment,
            facts_touched=len(model),
            join_passes=inner.statistics.rule_applications,
            iterations=inner.statistics.iterations,
            facts_derived=inner.statistics.facts_derived,
        ))

    def holds(self, atom):
        """Return True when the ground *atom* is in the least model
        (computes or reuses the cached model; for a one-off ground check on
        an uncached engine, ``query(atom, mode="auto")`` is the
        goal-directed alternative)."""
        return self.least_model().holds(atom)

    def install_model(self, model):
        """Install an externally maintained least model into the cache.

        Used by :class:`~repro.datalog.incremental.MaterializedModel` after
        an incremental update so that ``least_model()`` (and therefore
        ``query()`` / ``holds()``) return the maintained model without
        re-running the fixpoint.  The caller guarantees *model* is the least
        model of the program's current content; strata are refreshed here so
        a later genuine re-evaluation starts from a consistent state.
        """
        key = self._program_key()
        if self._strata_key != key:
            self._refresh_strata(key)
        if self._magic_key != key:
            # The magic caches answer for a different program content —
            # drop them now rather than trusting the next query's check.
            self._magic_templates.clear()
            self._magic_models.clear()
            self._magic_key = None
        self._model = model
        self._model_key = key
        return model

    # -- observability ------------------------------------------------------
    def _begin_evaluation(self):
        """Reset the per-evaluation state: a *fresh* statistics façade over
        the engine's registry (callers detect "a fixpoint ran" by object
        identity, so the façade object must change even though the counters
        it fronts are shared), a fresh planner snapshot, and — with
        provenance on — a fresh edge store with the recording sink armed
        (the caller disarms it when the fixpoint ends, so joins run on
        behalf of other machinery never record)."""
        self.statistics = EvaluationStatistics(registry=self._metrics)
        self.planner_statistics = JoinStatistics()
        if self.provenance:
            self._provenance = ProvenanceRecorder()
            self._provenance_sink = self._provenance.record
            self._provenance_key = None

    def metrics(self):
        """One flat snapshot of every instrument of this engine's
        :class:`~repro.obs.metrics.MetricsRegistry`: the fixpoint counters
        behind ``engine.statistics`` (``engine.*``), the cumulative query
        counters (``query.*``) and — under ``strategy="parallel"`` — the
        scheduler counters behind ``parallel_statistics``
        (``parallel.*``)."""
        return self._metrics.snapshot()

    def explain(self, atom):
        """The derivation tree of a ground *atom* of the least model — a
        :class:`~repro.obs.provenance.Derivation` whose leaves are EDB facts
        and whose inner nodes name the rule and the ground body atoms that
        produced each derived fact.

        Requires the engine to have been built with ``provenance=True``.
        When no provenance-recorded evaluation matches the current program
        content (nothing evaluated yet, the program changed, or the cached
        model was installed by an incremental maintainer), the fixpoint is
        re-run here — bypassing the model provider — to collect edges.
        Raises :class:`~repro.obs.provenance.ProvenanceError` for atoms
        outside the least model."""
        if self._provenance is None:
            raise ProvenanceError(
                "provenance recording is off; build the engine with "
                "provenance=True to use explain()"
            )
        key = self._program_key()
        if (
            self._provenance_key != key
            or self._model is None
            or self._model_key != key
        ):
            provider = self._model_provider
            self._model_provider = None
            self._model = None
            self._model_key = None
            try:
                model = self.least_model()
            finally:
                self._model_provider = provider
        else:
            model = self._model
        if atom not in model:
            raise ProvenanceError(
                f"{atom} is not in the least model; there is nothing to explain"
            )
        return derivation_tree(self._provenance, atom, known=model)

    def _program_key(self):
        # Content-based key: catches in-place replacement of facts/rules,
        # not just growth.  O(n) per call, but far cheaper than a fixpoint.
        return (tuple(self.program.facts), tuple(self.program.rules))

    def _stratum_rules(self, stratum):
        rules = self._effective_program().rules
        return [r for r in rules if (r.head.predicate, r.head.arity) in stratum]

    def _evaluate_scanning(self):
        database = {fact.atom for fact in self.program.facts}
        for stratum_index, stratum in enumerate(self._strata):
            self.statistics.strata = stratum_index + 1
            rules = self._stratum_rules(stratum)
            if not rules:
                continue
            if self.strategy == "naive":
                database = self._naive_fixpoint(rules, database)
            else:
                database = self._semi_naive_fixpoint(rules, database)
        return World(database)

    def _indexed_fixpoint_index(self):
        index = FactIndex(fact.atom for fact in self.program.facts)
        for stratum_index, stratum in enumerate(self._strata):
            self.statistics.strata = stratum_index + 1
            rules = self._stratum_rules(stratum)
            if rules:
                self._indexed_fixpoint(rules, index)
        return index

    def _evaluate_indexed(self):
        return World(self._indexed_fixpoint_index())

    def _columnar_fixpoint(self):
        """Run the full stratified fixpoint in id space and return the
        resulting :class:`~repro.datalog.columnar.RowStore` (the engine's
        interner decodes it)."""
        interner = self.interner
        if self._analysis is not None:
            # Pre-validate the columnar layout against the analyzer's
            # inferred signatures: one arity per predicate name, or the
            # fixed-width id columns would fork (raises with the DL003
            # diagnostics attached).
            self._analysis.validate_columns(interner)
        store = RowStore()
        encode = interner.encode_atom
        add_row = store.add_row
        for fact in self.program.facts:
            key, row = encode(fact.atom)
            add_row(key, row)
        for stratum_index, stratum in enumerate(self._strata):
            self.statistics.strata = stratum_index + 1
            rules = self._stratum_rules(stratum)
            if rules:
                columnar_fixpoint(self, rules, store, interner, self._compiled_cache)
        return store

    def _evaluate_columnar(self):
        return decode_world(self._columnar_fixpoint(), self.interner)

    def _parallel_fixpoint(self):
        """Evaluate over a :class:`~repro.datalog.shard.ShardedFactIndex`
        with :class:`~repro.datalog.parallel.ParallelScheduler` and return
        the index: independent dependency components run concurrently and
        delta passes fan out across shards; the resulting model is
        identical to the sequential strategies (set-union reductions are
        order-independent)."""
        from repro.datalog.parallel import ParallelScheduler
        from repro.datalog.shard import ShardedFactIndex

        index = ShardedFactIndex(
            (fact.atom for fact in self.program.facts),
            shards=self.shards,
            storage=self.storage,
            interner=self.interner,
        )
        scheduler = ParallelScheduler(self)
        self.parallel_statistics = scheduler.statistics
        scheduler.evaluate(index)
        self.statistics.strata = len(self._strata)
        return index

    def _evaluate_parallel(self):
        index = self._parallel_fixpoint()
        if self.storage == "columnar":
            return decode_world(
                [shard.store for shard in index.shard_indexes()], self.interner
            )
        return World.from_fact_index(index)

    def _planner_stats(self, index):
        """Refresh and return the histogram statistics for *index*, or
        ``None`` under the uniform planner (the scheduler then falls back
        to ``index.selectivity``)."""
        if self.planner != "histogram":
            return None
        return self.planner_statistics.refresh(index)

    # -- stratification -----------------------------------------------------
    def _condensation(self):
        """The predicate dependency condensation: Tarjan components of the
        IDB dependency graph (emitted dependencies-first) plus the positive
        and negative edge maps they were built from, as ``(components,
        component_of, positive_edges, negative_edges)``.

        This is the shared substrate of :meth:`_stratify` (which levels the
        components into strata) and of the parallel scheduler's wave
        grouping (:meth:`ParallelScheduler.waves
        <repro.datalog.parallel.ParallelScheduler.waves>`).  The
        stratifiability check happens here and is exact: the program is
        rejected precisely when a negative edge lies inside a component —
        the error spells out the offending cycle as a predicate path
        (computed by the static analyzer's
        :func:`~repro.datalog.analyze.negative_cycle`), e.g.
        ``p/1 -not-> q/1 -> p/1``.
        """
        components, component_of, positive_edges, negative_edges = condensation_of(
            self._effective_program().rules
        )
        for head, dependencies in negative_edges.items():
            for dependency in dependencies:
                if component_of[head] == component_of[dependency]:
                    cycle = negative_cycle(
                        head, dependency,
                        components[component_of[head]],
                        positive_edges, negative_edges,
                    )
                    raise StratificationError(
                        "program is not stratifiable: negation inside a "
                        f"recursive component — {format_cycle(cycle)}"
                    )
        return components, component_of, positive_edges, negative_edges

    def _stratify(self):
        """Split the intensional predicates into strata; extensional
        predicates live in stratum 0 implicitly.

        Built on :meth:`_condensation`, which performs the exact
        stratifiability check.
        """
        components, component_of, positive_edges, negative_edges = self._condensation()
        if not components:
            return [set()]
        # Components are emitted dependencies-first, so one pass suffices.
        component_stratum = [0] * len(components)
        for position, component in enumerate(components):
            level = 0
            for head in component:
                for dependency in positive_edges[head]:
                    if component_of[dependency] != position:
                        level = max(level, component_stratum[component_of[dependency]])
                for dependency in negative_edges[head]:
                    level = max(level, component_stratum[component_of[dependency]] + 1)
            component_stratum[position] = level
        ordered = defaultdict(set)
        for position, component in enumerate(components):
            ordered[component_stratum[position]].update(component)
        return [ordered[i] for i in sorted(ordered)]

    # -- join planning -------------------------------------------------------
    def _schedule(self, rule, delta_position=None, index=None, stats=None):
        """Order the body of *rule* for evaluation.

        Returns a list of ``(literal, source)`` pairs where ``source`` is
        ``"full"`` (the whole database), ``"delta"`` (the semi-naive delta)
        or ``"old"`` (the database minus the delta — literals textually
        before the delta position, per the non-duplicating decomposition).
        Negative literals are deferred until every variable they mention is
        bound by the positive prefix.  When *index* is given, positive
        literals are greedily reordered by estimated selectivity — taken
        from *stats* (a :class:`~repro.datalog.stats.JoinStatistics`
        histogram snapshot) when provided, otherwise from the index's
        uniform estimate; without an index their program order is
        preserved.
        """
        pending_negative = [l for l in rule.body if not l.positive]
        positives = [(i, l) for i, l in enumerate(rule.body) if l.positive]
        bound = set()
        schedule = []

        def emit_ready_negatives():
            for literal in list(pending_negative):
                if literal.variables() <= bound:
                    schedule.append((literal, "full"))
                    pending_negative.remove(literal)

        def source_for(position):
            if delta_position is None:
                return "full"
            if position == delta_position:
                return "delta"
            return "old" if position < delta_position else "full"

        if delta_position is not None:
            literal = rule.body[delta_position]
            schedule.append((literal, "delta"))
            bound |= literal.variables()
            positives = [(i, l) for i, l in positives if i != delta_position]
        emit_ready_negatives()

        while positives:
            if index is None:
                choice = 0
            else:
                choice = 0
                best_score = None
                for slot, (_, literal) in enumerate(positives):
                    atom = literal.atom
                    bound_positions = [
                        p
                        for p, arg in enumerate(atom.args)
                        if isinstance(arg, Parameter) or arg in bound
                    ]
                    estimator = stats if stats is not None else index
                    estimate = estimator.selectivity(
                        atom.predicate, len(atom.args), bound_positions
                    )
                    score = (0 if bound_positions else 1, estimate)
                    if best_score is None or score < best_score:
                        best_score, choice = score, slot
            position, literal = positives.pop(choice)
            schedule.append((literal, source_for(position)))
            bound |= literal.variables()
            emit_ready_negatives()

        if pending_negative:
            raise UnsafeRuleError(
                f"rule {rule} is not range-restricted: negated literal(s) "
                f"{', '.join(str(l) for l in pending_negative)} can never become ground"
            )
        return schedule

    # -- fixpoints -----------------------------------------------------------
    def _naive_fixpoint(self, rules, database):
        database = set(database)
        schedules = {rule: self._schedule(rule) for rule in rules}
        while True:
            self.statistics.iterations += 1
            with self.tracer.span(
                "fixpoint.round", iteration=self.statistics.iterations
            ):
                new_facts = set()
                for rule in rules:
                    self.statistics.rule_applications += 1
                    for derived in self._scan_join(
                        rule, schedules[rule], database, None, {}, 0
                    ):
                        if derived not in database:
                            new_facts.add(derived)
            if not new_facts:
                return database
            self.statistics.facts_derived += len(new_facts)
            database |= new_facts

    def _semi_naive_fixpoint(self, rules, database):
        database = set(database)
        full_schedules = {rule: self._schedule(rule) for rule in rules}
        delta_schedules = {}
        delta = None
        first_round = True
        while True:
            self.statistics.iterations += 1
            with self.tracer.span(
                "fixpoint.round", iteration=self.statistics.iterations
            ):
                new_facts = set()
                if not first_round:
                    delta_relations = {(a.predicate, len(a.args)) for a in delta}
                for rule in rules:
                    if first_round:
                        self.statistics.rule_applications += 1
                        produced = self._scan_join(
                            rule, full_schedules[rule], database, None, {}, 0
                        )
                        for derived in produced:
                            if derived not in database:
                                new_facts.add(derived)
                        continue
                    produced_this_rule = set()
                    for delta_position, literal in enumerate(rule.body):
                        if not literal.positive:
                            continue
                        if (literal.atom.predicate, len(literal.atom.args)) not in delta_relations:
                            self.statistics.delta_passes_skipped += 1
                            continue
                        self.statistics.rule_applications += 1
                        schedule = delta_schedules.get((rule, delta_position))
                        if schedule is None:
                            schedule = self._schedule(rule, delta_position=delta_position)
                            delta_schedules[(rule, delta_position)] = schedule
                        for derived in self._scan_join(
                            rule, schedule, database, delta, {}, 0
                        ):
                            if derived not in database:
                                produced_this_rule.add(derived)
                    new_facts |= produced_this_rule
            if not new_facts:
                return database
            self.statistics.facts_derived += len(new_facts)
            database |= new_facts
            delta = new_facts
            first_round = False

    def _indexed_fixpoint(self, rules, index):
        tracer = self.tracer
        delta = None
        first_round = True
        while True:
            self.statistics.iterations += 1
            round_span = tracer.span(
                "fixpoint.round", iteration=self.statistics.iterations
            )
            with round_span:
                # Feed the planner the observed bucket shapes of this round's
                # database, so derived relations that grew last round reorder
                # this round's joins.
                stats = self._planner_stats(index)
                new_facts = set()
                for rule in rules:
                    if first_round:
                        self.statistics.rule_applications += 1
                        schedule = self._schedule(rule, index=index, stats=stats)
                        with tracer.span("join.pass", rule=rule.head.predicate):
                            for derived in self._indexed_join(
                                rule, schedule, index, None, {}, 0
                            ):
                                if derived not in index:
                                    new_facts.add(derived)
                        continue
                    produced_this_rule = set()
                    for delta_position, literal in enumerate(rule.body):
                        if not literal.positive:
                            continue
                        if not delta.count(literal.atom.predicate, len(literal.atom.args)):
                            self.statistics.delta_passes_skipped += 1
                            continue
                        self.statistics.rule_applications += 1
                        schedule = self._schedule(
                            rule, delta_position=delta_position, index=index, stats=stats
                        )
                        with tracer.span(
                            "join.pass",
                            rule=rule.head.predicate,
                            delta_position=delta_position,
                        ):
                            for derived in self._indexed_join(
                                rule, schedule, index, delta, {}, 0
                            ):
                                if derived not in index:
                                    produced_this_rule.add(derived)
                    new_facts |= produced_this_rule
                round_span.annotate(facts_derived=len(new_facts))
            if not new_facts:
                return
            self.statistics.facts_derived += len(new_facts)
            delta = FactIndex(new_facts)
            index.absorb(delta)
            first_round = False

    # -- join execution --------------------------------------------------------
    def _scan_join(self, rule, schedule, database, delta, binding, position):
        """Evaluate a scheduled body by scanning Python sets (the unindexed
        baseline): yield the ground heads derivable under *binding*."""
        if position == len(schedule):
            yield _head_atom(rule, binding)
            return
        literal, source = schedule[position]
        if literal.positive:
            facts = delta if source == "delta" else database
            predicate = literal.atom.predicate
            arity = len(literal.atom.args)
            for fact in facts:
                if fact.predicate != predicate or len(fact.args) != arity:
                    continue
                if source == "old" and fact in delta:
                    continue
                extended = _match(literal.atom.args, fact.args, binding)
                if extended is not None:
                    yield from self._scan_join(
                        rule, schedule, database, delta, extended, position + 1
                    )
        else:
            candidate = _ground_negative(literal, binding)
            if candidate not in database:
                yield from self._scan_join(
                    rule, schedule, database, delta, binding, position + 1
                )

    def _indexed_join(self, rule, schedule, index, delta, binding, position):
        """Evaluate a scheduled body by probing :class:`FactIndex` buckets
        with the currently bound argument prefix."""
        if position == len(schedule):
            head = _head_atom(rule, binding)
            sink = self._provenance_sink
            if sink is not None and head not in index:
                # Only genuinely new derivations get an edge (facts already
                # in the index — EDB or earlier rounds — keep their first
                # explanation); the recorder's setdefault keeps the first
                # edge among same-round re-derivations.
                sink(head, rule, _ground_positive_body(rule, binding))
            yield head
            return
        literal, source = schedule[position]
        atom = literal.atom
        if literal.positive:
            bound_arguments = []
            for argument_position, arg in enumerate(atom.args):
                if isinstance(arg, Parameter):
                    bound_arguments.append((argument_position, arg))
                else:
                    value = binding.get(arg)
                    if value is not None:
                        bound_arguments.append((argument_position, value))
            source_index = delta if source == "delta" else index
            for fact in source_index.candidates(
                atom.predicate, len(atom.args), bound_arguments
            ):
                if source == "old" and fact in delta:
                    continue
                extended = _match(atom.args, fact.args, binding)
                if extended is not None:
                    yield from self._indexed_join(
                        rule, schedule, index, delta, extended, position + 1
                    )
        else:
            candidate = _ground_negative(literal, binding)
            if candidate not in index:
                yield from self._indexed_join(
                    rule, schedule, index, delta, binding, position + 1
                )


def _match_goal(goal, facts):
    """Match *goal* against an iterable of ground facts; return
    ``(bindings, touched)`` — the binding dicts and how many facts were
    scanned."""
    bindings = []
    touched = 0
    arity = len(goal.args)
    for fact in facts:
        touched += 1
        if len(fact.args) != arity:
            continue
        binding = _match(goal.args, fact.args, {})
        if binding is not None:
            bindings.append(binding)
    return bindings, touched


def _head_atom(rule, binding):
    return Atom(
        rule.head.predicate,
        tuple(binding[a] if isinstance(a, Variable) else a for a in rule.head.args),
    )


def _ground_positive_body(rule, binding):
    """The rule's positive body literals instantiated at *binding*, in body
    order — the premises of one provenance edge (negated literals are
    absences and carry none)."""
    return tuple(
        Atom(
            literal.atom.predicate,
            tuple(
                binding[a] if isinstance(a, Variable) else a
                for a in literal.atom.args
            ),
        )
        for literal in rule.body
        if literal.positive
    )


def _ground_negative(literal, binding):
    """Instantiate a negated literal under *binding*; scheduling guarantees
    groundness for range-restricted rules."""
    args = []
    for arg in literal.atom.args:
        if isinstance(arg, Variable):
            value = binding.get(arg)
            if value is None:
                raise UnsafeRuleError(
                    f"negated literal {literal} not ground at evaluation time"
                )
            args.append(value)
        else:
            args.append(arg)
    return Atom(literal.atom.predicate, tuple(args))


# The one SCC routine of the Datalog layer now lives with the rest of the
# graph analyses in :mod:`repro.datalog.analyze`; the historical name is
# kept for in-tree importers (the incremental maintainer condenses with it).
_strongly_connected_components = strongly_connected_components


def _match(pattern_args, fact_args, binding):
    """Match a literal's argument pattern against a ground fact, extending
    *binding*; return the extended binding or ``None``."""
    result = dict(binding)
    for pattern, value in zip(pattern_args, fact_args):
        if isinstance(pattern, Parameter):
            if pattern != value:
                return None
        else:
            bound = result.get(pattern)
            if bound is None:
                result[pattern] = value
            elif bound != value:
                return None
    return result
