"""Bottom-up evaluation of Datalog programs.

The engine computes the stratified minimal model of a program by iterating
its rules to a fixpoint, one stratum at a time.  Two fixpoint strategies are
provided:

* **naive** — every rule is re-joined against the entire database on every
  iteration;
* **semi-naive** — rules are joined against the *delta* (facts new in the
  previous round), the textbook optimisation whose effect the E9 ablation
  benchmark measures.

Negation is interpreted as stratified negation-as-failure: a program whose
predicate dependency graph has a negative cycle is rejected with
:class:`~repro.exceptions.StratificationError`.  For definite programs the
result is the least Herbrand model; for stratified programs it is the
standard perfect model, which coincides with the completion/closed-world
readings the paper discusses for "Prolog-like" databases.
"""

import itertools
from collections import defaultdict
from dataclasses import dataclass, field

from repro.exceptions import StratificationError
from repro.logic.syntax import Atom
from repro.logic.terms import Parameter, Variable
from repro.semantics.worlds import World


@dataclass
class EvaluationStatistics:
    """Counters describing one fixpoint computation."""

    iterations: int = 0
    rule_applications: int = 0
    facts_derived: int = 0
    strata: int = 0


class DatalogEngine:
    """Evaluates a :class:`~repro.datalog.program.DatalogProgram`."""

    def __init__(self, program, strategy="semi-naive"):
        if strategy not in ("naive", "semi-naive"):
            raise ValueError("strategy must be 'naive' or 'semi-naive'")
        self.program = program
        self.strategy = strategy
        self.statistics = EvaluationStatistics()
        self._strata = self._stratify()

    # -- public API ---------------------------------------------------------
    def least_model(self):
        """Compute the (stratified) minimal model and return it as a
        :class:`~repro.semantics.worlds.World`."""
        database = {fact.atom for fact in self.program.facts}
        for stratum_index, stratum in enumerate(self._strata):
            self.statistics.strata = stratum_index + 1
            rules = [r for r in self.program.rules if (r.head.predicate, r.head.arity) in stratum]
            if not rules:
                continue
            if self.strategy == "naive":
                database = self._naive_fixpoint(rules, database)
            else:
                database = self._semi_naive_fixpoint(rules, database)
        return World(database)

    def query(self, atom):
        """Return the substitutions (as dicts) matching *atom* against the
        least model."""
        model = self.least_model()
        results = []
        for fact in model.atoms:
            if fact.predicate != atom.predicate or len(fact.args) != len(atom.args):
                continue
            binding = _match(atom.args, fact.args, {})
            if binding is not None:
                results.append(binding)
        return results

    def holds(self, atom):
        """Return True when the ground *atom* is in the least model."""
        return self.least_model().holds(atom)

    # -- stratification -----------------------------------------------------
    def _stratify(self):
        """Split the intensional predicates into strata; extensional
        predicates live in stratum 0 implicitly."""
        idb = self.program.idb_predicates()
        if not idb:
            return [set()]
        # Edges: head depends on body predicate, marked negative or positive.
        positive_edges = defaultdict(set)
        negative_edges = defaultdict(set)
        for rule in self.program.rules:
            head_key = (rule.head.predicate, rule.head.arity)
            for literal in rule.body:
                body_key = (literal.atom.predicate, literal.atom.arity)
                if body_key not in idb:
                    continue
                if literal.positive:
                    positive_edges[head_key].add(body_key)
                else:
                    negative_edges[head_key].add(body_key)
        # Iteratively compute stratum numbers (Ullman's algorithm).
        stratum = {p: 0 for p in idb}
        changed = True
        limit = len(idb) + 1
        rounds = 0
        while changed:
            changed = False
            rounds += 1
            if rounds > limit * len(idb) + 1:
                raise StratificationError("program is not stratifiable (negative cycle)")
            for head in idb:
                for dep in positive_edges[head]:
                    if stratum[head] < stratum[dep]:
                        stratum[head] = stratum[dep]
                        changed = True
                for dep in negative_edges[head]:
                    if stratum[head] < stratum[dep] + 1:
                        stratum[head] = stratum[dep] + 1
                        changed = True
                if stratum[head] > len(idb):
                    raise StratificationError("program is not stratifiable (negative cycle)")
        ordered = defaultdict(set)
        for predicate, index in stratum.items():
            ordered[index].add(predicate)
        return [ordered[i] for i in sorted(ordered)]

    # -- fixpoints ------------------------------------------------------------
    def _naive_fixpoint(self, rules, database):
        database = set(database)
        while True:
            self.statistics.iterations += 1
            new_facts = set()
            for rule in rules:
                self.statistics.rule_applications += 1
                for derived in self._apply_rule(rule, database, database):
                    if derived not in database:
                        new_facts.add(derived)
            if not new_facts:
                return database
            self.statistics.facts_derived += len(new_facts)
            database |= new_facts

    def _semi_naive_fixpoint(self, rules, database):
        database = set(database)
        delta = set(database)
        first_round = True
        while True:
            self.statistics.iterations += 1
            new_facts = set()
            for rule in rules:
                self.statistics.rule_applications += 1
                if first_round:
                    candidates = self._apply_rule(rule, database, database)
                else:
                    candidates = self._apply_rule_with_delta(rule, database, delta)
                for derived in candidates:
                    if derived not in database:
                        new_facts.add(derived)
            if not new_facts:
                return database
            self.statistics.facts_derived += len(new_facts)
            database |= new_facts
            delta = new_facts
            first_round = False

    # -- rule application ------------------------------------------------------
    def _apply_rule(self, rule, database, positive_source):
        """Yield the ground heads derivable from *rule* joining positive
        literals against *positive_source* and evaluating negative literals
        against *database*."""
        yield from self._join(rule, rule.body, {}, database, positive_source, delta_index=None)

    def _apply_rule_with_delta(self, rule, database, delta):
        """Semi-naive: at least one positive literal must match a delta
        fact."""
        positive_positions = [i for i, l in enumerate(rule.body) if l.positive]
        for delta_position in positive_positions:
            yield from self._join(
                rule, rule.body, {}, database, database, delta_index=delta_position, delta=delta
            )

    def _join(self, rule, body, binding, database, positive_source, delta_index, delta=None, position=0):
        if position == len(body):
            head_args = tuple(binding[a] if isinstance(a, Variable) else a for a in rule.head.args)
            yield Atom(rule.head.predicate, head_args)
            return
        literal = body[position]
        if literal.positive:
            source = delta if (delta_index is not None and position == delta_index) else (
                positive_source if delta_index is None else database
            )
            for fact in source:
                if fact.predicate != literal.atom.predicate or len(fact.args) != len(literal.atom.args):
                    continue
                extended = _match(literal.atom.args, fact.args, binding)
                if extended is not None:
                    yield from self._join(
                        rule, body, extended, database, positive_source, delta_index, delta, position + 1
                    )
        else:
            ground_args = tuple(
                binding[a] if isinstance(a, Variable) else a for a in literal.atom.args
            )
            if any(isinstance(a, Variable) for a in ground_args):
                raise StratificationError(
                    f"negated literal {literal} not ground at evaluation time"
                )
            candidate = Atom(literal.atom.predicate, ground_args)
            if candidate not in database:
                yield from self._join(
                    rule, body, binding, database, positive_source, delta_index, delta, position + 1
                )


def _match(pattern_args, fact_args, binding):
    """Match a literal's argument pattern against a ground fact, extending
    *binding*; return the extended binding or ``None``."""
    result = dict(binding)
    for pattern, value in zip(pattern_args, fact_args):
        if isinstance(pattern, Parameter):
            if pattern != value:
                return None
        else:
            bound = result.get(pattern)
            if bound is None:
                result[pattern] = value
            elif bound != value:
                return None
    return result
