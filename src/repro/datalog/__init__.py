"""A Datalog substrate: deductive databases in the Prolog-like sense.

The paper repeatedly refers to "Prolog-like" / deductive databases — for
example the completion-based definitions of integrity-constraint
satisfaction (Definitions 3.3 and 3.4) only make sense for databases whose
Clark completion is defined, and Section 5.1 points out that Σ "could be a
Datalog program and *prove* could be realized using negation-as-failure".
This subpackage provides that substrate:

* :mod:`repro.datalog.program` — facts, rules (with optional stratified
  negation in rule bodies), programs, and conversion to/from FOPCE sentences;
* :mod:`repro.datalog.engine` — naive, semi-naive and indexed semi-naive
  bottom-up evaluation with stratified negation;
* :mod:`repro.datalog.analyze` — static program analysis: structured
  diagnostics (safety per variable, arity/constant-kind conflicts,
  negative cycles spelled out as predicate paths, duplicate/subsumed
  rules, dead code), inferred per-predicate signatures, the dependency
  condensation shared with the engine, the dead-rule pruner behind
  ``DatalogEngine(check=...)``, and a linter CLI
  (``python -m repro.datalog.analyze``);
* :mod:`repro.datalog.index` — hash indexes over ground facts (per
  relation and per argument position) backing the indexed strategy;
* :mod:`repro.datalog.interner` — the bidirectional symbol table
  (:class:`~repro.datalog.interner.Interner`) mapping constants to dense
  integer ids at the program boundary;
* :mod:`repro.datalog.columnar` — columnar interned fact storage
  (:class:`~repro.datalog.columnar.ColumnarFactIndex` over per-column
  integer arrays) and the generated id-space joins; the default backend of
  the indexed and parallel strategies (``storage="columnar"``), with
  object-graph storage (``storage="objects"``) kept as the ablation
  baseline;
* :mod:`repro.datalog.incremental` — incremental view maintenance: a
  :class:`~repro.datalog.incremental.MaterializedModel` keeps the least
  model consistent under EDB insertions *and* deletions at delta cost
  (derivation counting for non-recursive predicates, DRed
  overdelete/rederive for recursive ones);
* :mod:`repro.datalog.magic` — goal-directed query evaluation: adornment
  propagation and magic-set rewriting (supplementary predicates / sideways
  information passing), behind ``DatalogEngine.query``;
* :mod:`repro.datalog.stats` — observed per-predicate bucket-size
  histograms (:class:`~repro.datalog.stats.JoinStatistics`) feeding the
  indexed strategy's join planner;
* :mod:`repro.datalog.shard` — hash-partitioned fact storage
  (:class:`~repro.datalog.shard.ShardedFactIndex`, keyed by stable hash of
  ``(predicate, first argument)``) backing the parallel strategy and the
  sharded materialized views;
* :mod:`repro.datalog.parallel` — the concurrent stratum/rule scheduler
  (:class:`~repro.datalog.parallel.ParallelScheduler`): independent
  dependency components evaluate concurrently and delta-join passes fan out
  across shards, with the least model provably identical to sequential
  evaluation;
* :mod:`repro.datalog.completion` — Clark's completion ``Comp(DB)`` as a set
  of FOPCE sentences (plus unique-names handled by the FOPCE semantics
  itself).
"""

from repro.datalog.program import DatalogFact, DatalogLiteral, DatalogProgram, DatalogRule
from repro.datalog.analyze import (
    CODES,
    Diagnostic,
    PredicateSignature,
    ProgramAnalysis,
    analyze_program,
    parse_program,
    unchecked_rule,
)
from repro.datalog.engine import (
    CHECK_MODES,
    PLANNERS,
    QUERY_MODES,
    STRATEGIES,
    DatalogEngine,
    EvaluationStatistics,
    QueryResult,
)
from repro.datalog.columnar import ColumnarFactIndex, RowStore
from repro.datalog.index import FactIndex
from repro.datalog.incremental import MaintenanceStatistics, MaterializedModel, UpdateResult
from repro.datalog.interner import Interner
from repro.datalog.magic import MagicProgram, MagicTemplate, adornment_of
from repro.datalog.magic import rewrite as magic_rewrite
from repro.datalog.parallel import ParallelScheduler, ParallelStatistics
from repro.datalog.shard import DEFAULT_SHARDS, ShardedFactIndex
from repro.datalog.stats import ColumnStatistics, JoinStatistics
from repro.datalog.completion import clark_completion

__all__ = [
    "CHECK_MODES",
    "CODES",
    "ColumnStatistics",
    "ColumnarFactIndex",
    "DEFAULT_SHARDS",
    "DatalogEngine",
    "DatalogFact",
    "DatalogLiteral",
    "DatalogProgram",
    "DatalogRule",
    "Diagnostic",
    "EvaluationStatistics",
    "FactIndex",
    "Interner",
    "JoinStatistics",
    "MagicProgram",
    "MagicTemplate",
    "MaintenanceStatistics",
    "MaterializedModel",
    "PLANNERS",
    "ParallelScheduler",
    "ParallelStatistics",
    "PredicateSignature",
    "ProgramAnalysis",
    "QUERY_MODES",
    "QueryResult",
    "RowStore",
    "STRATEGIES",
    "ShardedFactIndex",
    "UpdateResult",
    "adornment_of",
    "analyze_program",
    "clark_completion",
    "magic_rewrite",
    "parse_program",
    "unchecked_rule",
]
