"""Concurrent stratum/rule scheduling: the engine's ``parallel`` strategy.

Sequential evaluation runs the strata of a program strictly in order and the
rules of a stratum in program order.  Both sequencings are stricter than the
semantics requires; this module relaxes exactly the two over-sequencings the
ROADMAP names, while keeping the computed least model **identical** to the
sequential strategies (the hypothesis properties in
``tests/test_datalog_parallel.py`` and the model-agreement checks of
``benchmarks/run_bench.py`` enforce this):

* **Independent components run concurrently.**  The predicate dependency
  condensation (the same Tarjan SCC pass
  :meth:`~repro.datalog.engine.DatalogEngine._stratify` is built on) is
  levelled by longest path over *all* edges, positive and negative, into
  **waves**: no component depends on another in its own wave, so each wave's
  components evaluate their fixpoints concurrently.  A concurrently
  evaluated component writes its derivations into a private overlay
  (:class:`_StackedIndex`) over the shared, wave-stable base index; at the
  wave barrier the overlays merge into the base in component order.
  Overlays hold disjoint predicates (each component derives only its own
  heads), so the merged set — and therefore the model — does not depend on
  scheduling.

* **Within a component, delta passes fan out across shards.**  The fixpoint
  of a wave that holds a single component (the common case for the big
  recursive workloads) runs its semi-naive rounds against the shared
  :class:`~repro.datalog.shard.ShardedFactIndex` directly and splits every
  delta-position join pass by delta shard: each worker enumerates one
  shard's slice of the delta (full-index membership semantics are preserved
  by :class:`_DeltaShard`), derives into a private set, and the per-task
  sets merge by set union — a deterministic reduction, since the least
  model is a set and union is commutative.

Workers are OS threads (a shared :class:`~concurrent.futures.ThreadPoolExecutor`);
per-round work is read-only against the round-stable base index and delta,
with all mutation (``absorb``, statistics) confined to the coordinating
thread at the round/wave barriers.  With ``workers=1`` (the default on a
single-core host) every task runs inline on the coordinator — the
decomposition is identical, only the concurrency is gone, which is what
keeps the strategy's single-core overhead to the sharding indirection
alone.
"""

from concurrent.futures import ThreadPoolExecutor
from itertools import chain
import os

from repro.datalog.index import FactIndex
from repro.datalog.shard import ShardedFactIndex
from repro.datalog.stats import JoinStatistics
from repro.obs.metrics import MetricsFacade, facade_fields
from repro.obs.tracing import NOOP_TRACER


@facade_fields
class ParallelStatistics(MetricsFacade):
    """Counters describing one parallel evaluation.

    ``waves`` is the number of concurrency barriers (levels of the
    dependency condensation), ``wave_widths`` the component count per wave
    (its maximum is how much stratum-level concurrency the program exposed),
    ``concurrent_components`` the number of component fixpoints evaluated in
    waves of width > 1, ``shard_tasks`` the number of per-shard delta-join
    tasks fanned out, and ``workers`` the size of the worker pool used.

    A façade over the engine's metrics registry (``parallel.*`` counters);
    field reads and writes go straight to the registry instruments, and
    the list-valued ``wave_widths`` stays a plain attribute.
    """

    FIELDS = ("waves", "concurrent_components", "shard_tasks", "workers")
    PREFIX = "parallel."
    __slots__ = ("wave_widths",)

    def __init__(self, registry=None, wave_widths=None, **fields):
        fields.setdefault("workers", 1)
        super().__init__(registry=registry, **fields)
        self.wave_widths = list(wave_widths or [])

    def as_dict(self):
        data = super().as_dict()
        data["wave_widths"] = list(self.wave_widths)
        return data

    @property
    def max_wave_width(self):
        """The widest wave — the peak component-level concurrency."""
        return max(self.wave_widths, default=0)


class _DeltaShard:
    """One shard's slice of a semi-naive delta, with whole-delta membership.

    The delta-position literal of a fanned-out join pass enumerates only
    this shard's facts (``candidates``), while the non-duplicating ``old``
    source discipline — "is this fact part of the round's delta?" — keeps
    consulting the full delta (``__contains__``), so the per-shard passes
    partition exactly the derivations the sequential pass enumerates.
    """

    __slots__ = ("_full", "_shard")

    def __init__(self, full, shard):
        self._full = full
        self._shard = shard

    def candidates(self, predicate, arity, bound):
        return self._shard.candidates(predicate, arity, bound)

    def __contains__(self, atom):
        return atom in self._full


class _StackedIndex:
    """A read view of ``base`` plus a private ``overlay``, for component
    fixpoints that run concurrently with other components of their wave.

    The base (everything computed in earlier waves, plus the EDB) is
    round-stable and shared; all writes go to the overlay, which holds only
    the component's own derivations.  Implements the full read surface the
    engine's join machinery and the planner statistics need.
    """

    __slots__ = ("base", "overlay")

    def __init__(self, base, overlay):
        self.base = base
        self.overlay = overlay

    def candidates(self, predicate, arity, bound):
        bound = list(bound)
        return chain(
            self.base.candidates(predicate, arity, bound),
            self.overlay.candidates(predicate, arity, bound),
        )

    def __contains__(self, atom):
        return atom in self.overlay or atom in self.base

    def count(self, predicate, arity):
        return self.base.count(predicate, arity) + self.overlay.count(predicate, arity)

    def relations(self):
        return self.base.relations() | self.overlay.relations()

    def histogram(self, predicate, arity, position):
        merged = dict(self.base.histogram(predicate, arity, position))
        for value, size in self.overlay.histogram(predicate, arity, position).items():
            merged[value] = merged.get(value, 0) + size
        return merged

    def selectivity(self, predicate, arity, positions):
        # A union estimate: the sum of the per-part uniform estimates (the
        # parts are disjoint fact sets, so summing never undercounts).
        return self.base.selectivity(predicate, arity, positions) + self.overlay.selectivity(
            predicate, arity, positions
        )

    def absorb(self, delta):
        self.overlay.absorb(delta)
        return self


class _Component:
    """One schedulable unit: a strongly connected component of the IDB
    dependency graph and the rules whose heads it owns."""

    __slots__ = ("predicates", "rules")

    def __init__(self, predicates, rules):
        self.predicates = predicates
        self.rules = rules


def default_workers(shards):
    """The worker-pool size used when the engine is not told one: one worker
    per shard, capped by the host's CPU count (threads beyond the core count
    only add scheduling overhead under the GIL)."""
    return max(1, min(shards, os.cpu_count() or 1))


class ParallelScheduler:
    """Evaluates a stratified program concurrently over a
    :class:`~repro.datalog.shard.ShardedFactIndex`.

    One instance serves one engine evaluation
    (:meth:`DatalogEngine.least_model <repro.datalog.engine.DatalogEngine.least_model>`
    with ``strategy="parallel"`` builds one per fixpoint); :meth:`evaluate`
    mutates the passed index up to the least model and fills
    :attr:`statistics` (also exposed as the engine's
    ``parallel_statistics``).
    """

    def __init__(self, engine):
        self.engine = engine
        self.shards = engine.shards
        self.workers = (
            engine.workers if engine.workers is not None else default_workers(engine.shards)
        )
        self.statistics = ParallelStatistics(
            registry=getattr(engine, "_metrics", None), workers=self.workers
        )
        self._pool = None

    # -- public API ----------------------------------------------------------
    def evaluate(self, index):
        """Drive *index* (a :class:`~repro.datalog.shard.ShardedFactIndex`
        seeded with the program's EDB) to the least model, wave by wave."""
        waves = self.waves()
        tracer = getattr(self.engine, "tracer", NOOP_TRACER)
        try:
            for wave in waves:
                self.statistics.waves += 1
                self.statistics.wave_widths.append(len(wave))
                with tracer.span(
                    "fixpoint.wave",
                    wave=self.statistics.waves,
                    components=len(wave),
                ):
                    if len(wave) == 1:
                        # The whole machine belongs to one component: run its
                        # fixpoint against the shared index, fanning the delta
                        # passes out across shards.  Columnar shards take the
                        # compiled id-space fixpoint; object shards the
                        # atom-face one.  Both fan out and count identically.
                        if index.storage == "columnar":
                            self._columnar_component_fixpoint(
                                wave[0].rules,
                                index,
                                counters=self.engine.statistics,
                                planner_stats=self.engine.planner_statistics,
                            )
                        else:
                            self._component_fixpoint(
                                wave[0].rules,
                                index,
                                fan_out=True,
                                counters=self.engine.statistics,
                                planner_stats=self.engine.planner_statistics,
                            )
                        continue
                    self.statistics.concurrent_components += len(wave)
                    overlays = [FactIndex() for _ in wave]

                    def run(component, overlay):
                        # Private counters and planner snapshots per concurrent
                        # component; merged at the barrier below so the
                        # engine's statistics stay exact without cross-thread
                        # writes.
                        from repro.datalog.engine import EvaluationStatistics

                        counters = EvaluationStatistics()
                        self._component_fixpoint(
                            component.rules,
                            _StackedIndex(index, overlay),
                            fan_out=False,
                            counters=counters,
                            planner_stats=JoinStatistics(),
                        )
                        return counters

                    results = self._run_tasks(
                        [
                            (run, (component, overlay))
                            for component, overlay in zip(wave, overlays)
                        ]
                    )
                    for counters in results:
                        self._merge_counters(counters)
                    for overlay in overlays:
                        index.absorb(overlay)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        return index

    def waves(self):
        """Group the dependency condensation into waves: antichains of
        components levelled by longest dependency path, so that every
        component's dependencies (positive *and* negative) live in strictly
        earlier waves.  Stratified negation is thereby respected — a negated
        predicate is final before any reader of it starts — and components
        sharing a wave are mutually independent."""
        engine = self.engine
        components, component_of, positive_edges, negative_edges = engine._condensation()
        if not components:
            return []
        rules_for = {}
        # The effective program: the engine's static analysis may have
        # pruned never-fire rules, and the waves must schedule what the
        # sequential strategies would evaluate.
        for rule in engine._effective_program().rules:
            rules_for.setdefault((rule.head.predicate, rule.head.arity), []).append(rule)
        # Components are emitted dependencies-first by Tarjan, so one pass
        # computes longest-path levels.
        level = [0] * len(components)
        for position, members in enumerate(components):
            deepest = -1
            for head in members:
                for dependency in chain(positive_edges[head], negative_edges[head]):
                    target = component_of[dependency]
                    if target != position:
                        deepest = max(deepest, level[target])
            level[position] = deepest + 1
        waves = {}
        for position, members in enumerate(components):
            rules = [rule for key in sorted(members) for rule in rules_for.get(key, ())]
            if not rules:
                continue
            waves.setdefault(level[position], []).append(_Component(members, rules))
        return [waves[depth] for depth in sorted(waves)]

    # -- component fixpoints -------------------------------------------------
    def _component_fixpoint(self, rules, view, fan_out, counters, planner_stats):
        """The engine's indexed semi-naive fixpoint for one component,
        evaluated against *view* — the shared sharded index (``fan_out``,
        single-component waves) or a private overlay stack (concurrent
        waves).  With ``fan_out`` each delta pass splits by delta shard and
        the slices run on the worker pool."""
        engine = self.engine
        delta = None
        first_round = True
        while True:
            counters.iterations += 1
            stats = (
                planner_stats.refresh(view) if engine.planner == "histogram" else None
            )
            if first_round:
                new_facts = set()
                tasks = []
                for rule in rules:
                    counters.rule_applications += 1
                    schedule = engine._schedule(rule, index=view, stats=stats)
                    tasks.append((self._join_task, (rule, schedule, view, None)))
                for produced in self._run_tasks(tasks, fan_out=fan_out):
                    new_facts |= produced
            else:
                tasks = []
                for rule in rules:
                    for delta_position, literal in enumerate(rule.body):
                        if not literal.positive:
                            continue
                        key = (literal.atom.predicate, len(literal.atom.args))
                        if not delta.count(*key):
                            counters.delta_passes_skipped += 1
                            continue
                        counters.rule_applications += 1
                        schedule = engine._schedule(
                            rule, delta_position=delta_position, index=view, stats=stats
                        )
                        for slice_ in self._delta_slices(delta, key, fan_out):
                            tasks.append((self._join_task, (rule, schedule, view, slice_)))
                new_facts = set()
                for produced in self._run_tasks(tasks, fan_out=fan_out):
                    new_facts |= produced
            if not new_facts:
                return
            counters.facts_derived += len(new_facts)
            if fan_out:
                delta = ShardedFactIndex(
                    new_facts,
                    shards=self.shards,
                    salt=view.salt,
                    storage=view.storage,
                    interner=view.interner,
                )
            else:
                delta = FactIndex(new_facts)
            view.absorb(delta)
            first_round = False

    def _columnar_component_fixpoint(self, rules, view, counters, planner_stats):
        """The compiled id-space semi-naive fixpoint for one component over
        a columnar :class:`~repro.datalog.shard.ShardedFactIndex` — the
        columnar twin of the ``fan_out`` atom-face fixpoint, with identical
        round structure, counters and shard fan-out.  Each delta pass runs a
        generated join (:func:`~repro.datalog.columnar.compile_schedule`)
        over the shard :class:`~repro.datalog.columnar.RowStore` fragments;
        per-shard delta slices enumerate one shard's delta store while the
        non-duplicating ``old`` discipline consults the whole round delta,
        and the round barrier ships compact id-row sets back into the shards
        (:meth:`~repro.datalog.shard.ShardedFactIndex.absorb_row_facts`)."""
        from repro.datalog.columnar import compiled_for

        engine = self.engine
        interner = view.interner
        cache = engine._compiled_cache
        sources = tuple(shard.store for shard in view.shard_indexes())
        fragments = len(sources)
        delta_stores = None
        first_round = True
        while True:
            counters.iterations += 1
            stats = (
                planner_stats.refresh(view) if engine.planner == "histogram" else None
            )
            tasks = []
            if first_round:
                for rule in rules:
                    counters.rule_applications += 1
                    schedule = engine._schedule(rule, index=view, stats=stats)
                    join = compiled_for(
                        cache, rule, None, schedule, interner, (fragments, 0)
                    )
                    tasks.append((self._columnar_join_task, (join, sources, (), ())))
            else:
                delta_full = tuple(delta_stores)
                shape = (fragments, len(delta_full))
                for rule in rules:
                    for delta_position, literal in enumerate(rule.body):
                        if not literal.positive:
                            continue
                        key = (literal.atom.predicate, len(literal.atom.args))
                        populated = [
                            store for store in delta_stores if store.count(*key)
                        ]
                        if not populated:
                            counters.delta_passes_skipped += 1
                            continue
                        counters.rule_applications += 1
                        schedule = engine._schedule(
                            rule, delta_position=delta_position, index=view, stats=stats
                        )
                        join = compiled_for(
                            cache, rule, delta_position, schedule, interner, shape
                        )
                        if len(populated) == 1:
                            tasks.append((
                                self._columnar_join_task,
                                (join, sources, delta_full, delta_full),
                            ))
                        else:
                            self.statistics.shard_tasks += len(populated)
                            for store in populated:
                                tasks.append((
                                    self._columnar_join_task,
                                    (join, sources, delta_full, (store,)),
                                ))
            new_facts = set()
            for produced in self._run_tasks(tasks):
                new_facts |= produced
            if not new_facts:
                return
            counters.facts_derived += len(new_facts)
            delta_stores = view.absorb_row_facts(new_facts)
            first_round = False

    def _columnar_join_task(self, join, sources, delta_full, delta_enum):
        """Run one generated join pass into a private ``(key, id-row)`` set
        — the columnar unit of work shipped to the pool."""
        produced = set()
        join(sources, delta_full, delta_enum, produced)
        return produced

    def _join_task(self, rule, schedule, view, delta):
        """Evaluate one (rule, schedule, delta-slice) join pass into a
        private set — the unit of work shipped to the pool."""
        produced = set()
        for derived in self.engine._indexed_join(rule, schedule, view, delta, {}, 0):
            if derived not in view:
                produced.add(derived)
        return produced

    def _delta_slices(self, delta, key, fan_out):
        """Split a round's delta into per-shard slices for one delta
        predicate (whole-delta membership preserved); a single whole-delta
        slice when not fanning out or when only one shard holds facts."""
        if not fan_out:
            yield delta
            return
        populated = [
            delta.shard(number)
            for number in range(delta.shard_count)
            if delta.shard(number).count(*key)
        ]
        if len(populated) <= 1:
            yield delta
            return
        self.statistics.shard_tasks += len(populated)
        for shard in populated:
            yield _DeltaShard(delta, shard)

    # -- worker pool ---------------------------------------------------------
    def _run_tasks(self, tasks, fan_out=True):
        """Run ``(callable, args)`` tasks, on the pool when it exists and the
        caller may use it (never from inside a concurrently evaluated
        component — nested waiting on a bounded pool can deadlock), inline
        otherwise.  Results are returned in task order, so every reduction
        over them is deterministic."""
        if self.workers > 1 and fan_out and len(tasks) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="datalog"
                )
            futures = [self._pool.submit(function, *args) for function, args in tasks]
            return [future.result() for future in futures]
        return [function(*args) for function, args in tasks]

    def _merge_counters(self, counters):
        statistics = self.engine.statistics
        statistics.iterations += counters.iterations
        statistics.rule_applications += counters.rule_applications
        statistics.facts_derived += counters.facts_derived
        statistics.delta_passes_skipped += counters.delta_passes_skipped
