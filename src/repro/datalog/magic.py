"""Magic-set rewriting: goal-directed Datalog evaluation.

``DatalogEngine.least_model()`` computes *everything* a program entails.
For a point query — "which ``z`` satisfy ``sg(ann, z)``?" — that is the
wrong cost model: the answer only depends on the part of the least model
reachable from the goal's bound arguments.  Magic-set rewriting is the
classical bridge between bottom-up evaluation and that goal-directedness:
it specialises the program to the query's *binding pattern* so that the
ordinary (indexed, semi-naive) fixpoint computes only goal-relevant facts.

The rewrite has three ingredients, all standard:

* **Adornments.**  Every IDB predicate reachable from the goal is split
  into binding-pattern variants, written ``sg#bf`` — "first argument bound,
  second free".  An argument position is bound when, at the point the
  literal is evaluated, its term is a constant or a variable already bound
  by the sideways information passing below.

* **Sideways information passing (SIP) with supplementary predicates.**
  Each adorned rule body is processed in evaluation order (positive
  literals textually, negated literals as soon as their variables are
  bound, mirroring the engine's own scheduling discipline).  The chain of
  *supplementary* predicates ``sup#r#i`` materialises, per rule ``r`` and
  body prefix ``i``, exactly the variable bindings that later literals (or
  the head) still need — so each prefix is evaluated once, not once per
  downstream literal.

* **Magic predicates.**  ``magic#sg#bf(x)`` holds the set of bound-argument
  tuples the query is actually interested in.  The goal seeds it with one
  fact; every IDB body literal contributes a rule deriving the callee's
  magic tuples from the caller's supplementary prefix; every adorned rule
  guards its own derivations behind its magic predicate.  The fixpoint of
  the rewritten program therefore interleaves "which sub-goals are asked"
  with "what do they answer" — the bottom-up emulation of top-down
  evaluation with memoing.

**Negation.**  Negated EDB literals pass through untouched.  A negated IDB
literal is adorned all-bound (the SIP schedules it only once its variables
are ground) and gets magic rules like any positive occurrence, so every
tuple probed against ``not q#bb`` is guaranteed to have its magic fact —
the restricted ``q#bb`` is complete for exactly the tuples it is asked
about.  The rewrite itself, however, can destroy stratifiability: when a
predicate evaluated *after* a negated literal feeds (through the magic
rules) the negated predicate's sub-computation, the binding-passing cycle
crosses the negation.  :func:`rewrite` detects this (the rewritten program
fails the engine's exact stratification check) and raises
:class:`~repro.exceptions.MagicRewriteError`; ``query(mode="auto")`` then
falls back to full materialization — slower, never wrong.

The module is deliberately engine-agnostic: :func:`rewrite` maps a
``(program, goal)`` pair to a :class:`MagicProgram` (an ordinary
:class:`~repro.datalog.program.DatalogProgram` plus bookkeeping), and
:func:`answer` runs it through a fresh :class:`DatalogEngine` and matches
the goal against the adorned answer predicate.  Generated predicate names
use ``#`` as a separator (``sg#bf``, ``magic#sg#bf``, ``sup#3#1#sg#bf``),
which cannot collide with parser-produced predicates.

The rewrite factors into two halves so that repeated queries can share
work (this is what backs the engine's per-program magic cache):
:func:`plan` derives the *constant-independent* half — the adorned /
supplementary / magic rule set for one ``(predicate, adornment)`` pair,
already validated for stratifiability — as a reusable
:class:`MagicTemplate`, and :func:`instantiate` assembles a concrete
:class:`MagicProgram` from a template, the current EDB and one goal's
bound constants.  ``rewrite`` is exactly ``instantiate(plan(...), ...)``.
"""

from dataclasses import dataclass, field

from repro.datalog.program import DatalogLiteral, DatalogProgram, DatalogRule
from repro.exceptions import MagicRewriteError, StratificationError
from repro.logic.syntax import Atom
from repro.logic.terms import Variable


def adornment_of(goal, bound=()):
    """The binding pattern of *goal* as a string of ``b``/``f`` flags, one
    per argument position: ``b`` for constants and for variables in the
    *bound* set, ``f`` for unbound variables.  ``sg(ann, z)`` adorns to
    ``"bf"``."""
    return "".join(
        "b" if not isinstance(arg, Variable) or arg in bound else "f"
        for arg in goal.args
    )


def adorned_name(predicate, adornment):
    """The relation name of an adorned predicate variant: ``sg#bf``."""
    return f"{predicate}#{adornment}"


def magic_name(predicate, adornment):
    """The relation name of an adornment's magic predicate:
    ``magic#sg#bf``."""
    return f"magic#{predicate}#{adornment}"


@dataclass(frozen=True)
class MagicProgram:
    """The output of :func:`rewrite`: the rewritten program plus the
    bookkeeping needed to seed and read it.

    ``program`` is a fresh :class:`~repro.datalog.program.DatalogProgram`
    holding the original EDB facts, the magic seed fact, and the
    magic/supplementary/adorned rules.  ``answer_predicate`` is the adorned
    relation name whose facts are the goal-relevant slice of the original
    goal predicate; match the original goal against its facts to extract
    bindings.  ``adornments`` lists every ``(predicate, adornment)`` pair
    the rewrite reached — its length is the size of the goal-relevant
    subprogram.
    """

    program: DatalogProgram
    goal: Atom
    answer_predicate: str
    adornment: str
    seed: Atom
    adornments: tuple = field(default=())

    def answers(self, model):
        """Extract the goal's bindings from a least *model* of
        :attr:`program`: returns a list of ``{Variable: Parameter}`` dicts,
        one per matching fact of :attr:`answer_predicate`."""
        from repro.datalog.engine import _match_goal

        return _match_goal(self.goal, model.atoms_for(self.answer_predicate))[0]


def _sip_order(rule):
    """The sideways-information-passing order of a rule body: positive
    literals in textual order, each negated literal emitted as soon as the
    positives before it have bound all of its variables — the same
    discipline the engine's join scheduler uses, which guarantees every
    negated literal is adorned all-bound."""
    ordered = []
    bound = set()
    pending_negative = [l for l in rule.body if not l.positive]

    def emit_ready_negatives():
        for literal in list(pending_negative):
            if literal.variables() <= bound:
                ordered.append(literal)
                pending_negative.remove(literal)

    emit_ready_negatives()
    for literal in rule.body:
        if not literal.positive:
            continue
        ordered.append(literal)
        bound |= literal.variables()
        emit_ready_negatives()
    if pending_negative:
        # DatalogRule safety already rejects this; defend anyway.
        raise MagicRewriteError(
            f"rule {rule} has a negated literal that never becomes ground"
        )
    return ordered


def _bound_terms(atom, bound):
    """The argument terms of *atom* at its bound positions (constants and
    already-bound variables), in position order."""
    return tuple(
        arg
        for arg in atom.args
        if not isinstance(arg, Variable) or arg in bound
    )


def _sup_terms(available, needed):
    """The head terms of a supplementary predicate: the variables bound so
    far that some later literal or the head still needs, in deterministic
    (name) order."""
    return tuple(sorted(available & needed, key=lambda v: v.name))


@dataclass(frozen=True)
class MagicTemplate:
    """The constant-independent half of a magic-set rewrite: the adorned /
    supplementary / magic rule set for one ``(predicate, arity,
    adornment)`` triple, already validated for stratifiability.

    A template depends only on the program's *rules* and on which
    predicates carry EDB facts — not on the facts themselves or on the
    goal's bound constants — so it can be cached and re-instantiated
    (:func:`instantiate`) for every goal sharing the binding pattern.
    ``adornments`` lists every ``(predicate, adornment)`` pair the rewrite
    reached; its length is the size of the goal-relevant subprogram.
    """

    predicate: str
    arity: int
    adornment: str
    rules: tuple
    answer_predicate: str
    magic_predicate: str
    adornments: tuple = field(default=())


def plan(program, goal):
    """Derive the :class:`MagicTemplate` for *goal*'s binding pattern.

    Raises :class:`~repro.exceptions.MagicRewriteError` when the goal
    predicate is extensional (nothing to specialise — probe the facts
    directly) or when the rewritten rule set is no longer stratifiable
    (negation entangled with binding passing; fall back to full
    evaluation).  Validation is eager and needs only the rules —
    stratification never looks at facts — so a cached template can be
    instantiated against any EDB state of the program.
    """
    idb = program.idb_predicates()
    goal_key = (goal.predicate, len(goal.args))
    if goal_key not in idb:
        raise MagicRewriteError(
            f"goal predicate {goal.predicate}/{len(goal.args)} is extensional — "
            "answer it with a direct index probe, not a rewrite"
        )

    adornment = adornment_of(goal)
    collected = DatalogProgram()

    rules_for = {}
    facts_for = set()
    for index, rule in enumerate(program.rules):
        rules_for.setdefault((rule.head.predicate, rule.head.arity), []).append(
            (index, rule)
        )
    for fact in program.facts:
        facts_for.add((fact.atom.predicate, len(fact.atom.args)))

    seen = set()
    worklist = [(goal.predicate, len(goal.args), adornment)]
    while worklist:
        predicate, arity, pattern = worklist.pop()
        if (predicate, arity, pattern) in seen:
            continue
        seen.add((predicate, arity, pattern))
        answer = adorned_name(predicate, pattern)
        magic = magic_name(predicate, pattern)

        if (predicate, arity) in facts_for:
            # The predicate is mixed (facts *and* rules): import its EDB
            # facts into the adorned relation, guarded by the magic set.
            variables = tuple(Variable(f"_x{i}") for i in range(arity))
            bound_vars = tuple(
                v for v, flag in zip(variables, pattern) if flag == "b"
            )
            collected.add_rule(
                DatalogRule(
                    Atom(answer, variables),
                    (
                        DatalogLiteral(Atom(magic, bound_vars)),
                        DatalogLiteral(Atom(predicate, variables)),
                    ),
                )
            )

        for rule_index, rule in rules_for.get((predicate, arity), ()):
            _rewrite_rule(
                collected, rule, rule_index, pattern, idb, worklist
            )

    try:
        # Validate stratifiability with the engine's exact check (it only
        # reads the rules, so the facts need not be assembled yet); import
        # here to keep module loading cycle-free.
        from repro.datalog.engine import DatalogEngine

        # check="off": the rewrite is generated code (benign duplicates by
        # construction) and only stratifiability is in question here — the
        # constructor's exact check raises StratificationError, whose
        # message now spells out the offending negative cycle.
        DatalogEngine(collected, check="off")
    except StratificationError as error:
        raise MagicRewriteError(
            f"magic-set rewrite of goal {goal} is not stratifiable "
            f"(binding passing crosses a negation): {error}"
        ) from error

    return MagicTemplate(
        predicate=goal.predicate,
        arity=len(goal.args),
        adornment=adornment,
        rules=tuple(collected.rules),
        answer_predicate=adorned_name(goal.predicate, adornment),
        magic_predicate=magic_name(goal.predicate, adornment),
        adornments=tuple(sorted((p, a) for p, _, a in seen)),
    )


def instantiate(template, program, goal):
    """Assemble a concrete :class:`MagicProgram` from a cached *template*,
    the current EDB facts of *program* and one *goal*'s bound constants
    (which become the magic seed fact).  The goal must match the template's
    predicate, arity and binding pattern."""
    adornment = adornment_of(goal)
    if (goal.predicate, len(goal.args), adornment) != (
        template.predicate, template.arity, template.adornment
    ):
        raise MagicRewriteError(
            f"goal {goal} (adornment {adornment!r}) does not match template "
            f"{template.predicate}/{template.arity}#{template.adornment}"
        )
    rewritten = DatalogProgram()
    for fact in program.facts:
        rewritten.add_fact(fact)
    seed = Atom(
        template.magic_predicate,
        tuple(arg for arg in goal.args if not isinstance(arg, Variable)),
    )
    rewritten.add_fact(seed)
    for rule in template.rules:
        rewritten.add_rule(rule)
    return MagicProgram(
        program=rewritten,
        goal=goal,
        answer_predicate=template.answer_predicate,
        adornment=adornment,
        seed=seed,
        adornments=template.adornments,
    )


def rewrite(program, goal):
    """Rewrite *program* for goal-directed evaluation of *goal*.

    Returns a :class:`MagicProgram`; raises
    :class:`~repro.exceptions.MagicRewriteError` when the goal predicate is
    extensional (nothing to specialise — probe the facts directly) or when
    the rewritten program is no longer stratifiable (negation entangled
    with binding passing; fall back to full evaluation).

    The rewrite is validated eagerly: the returned program has already
    passed the engine's exact stratification check, so feeding it to a
    :class:`~repro.datalog.engine.DatalogEngine` cannot fail later.
    (Equivalent to ``instantiate(plan(program, goal), program, goal)`` —
    callers answering many goals should cache the :func:`plan` half, as
    ``DatalogEngine.query`` does.)
    """
    return instantiate(plan(program, goal), program, goal)


def _rewrite_rule(rewritten, rule, rule_index, pattern, idb, worklist):
    """Emit the supplementary chain, magic rules and guarded adorned rule
    for one original rule under one head adornment, appending newly reached
    ``(predicate, arity, adornment)`` triples to *worklist*."""
    head = rule.head
    bound = {
        arg
        for arg, flag in zip(head.args, pattern)
        if flag == "b" and isinstance(arg, Variable)
    }
    ordered = _sip_order(rule)
    head_variables = {a for a in head.args if isinstance(a, Variable)}

    # needed_after[i]: variables some literal at SIP position >= i, or the
    # head, still needs — the keep-set of supplementary predicate i.
    needed_after = [set(head_variables) for _ in range(len(ordered) + 1)]
    for i in range(len(ordered) - 1, -1, -1):
        needed_after[i] = needed_after[i + 1] | ordered[i].variables()

    sup_of = lambda i: f"sup#{rule_index}#{i}#{adorned_name(head.predicate, pattern)}"
    magic_head = Atom(
        magic_name(head.predicate, pattern),
        tuple(arg for arg, flag in zip(head.args, pattern) if flag == "b"),
    )
    sup_terms = _sup_terms(bound, needed_after[0])
    sup_atom = Atom(sup_of(0), sup_terms)
    rewritten.add_rule(DatalogRule(sup_atom, (DatalogLiteral(magic_head),)))

    for i, literal in enumerate(ordered):
        atom = literal.atom
        key = (atom.predicate, len(atom.args))
        if key in idb:
            literal_pattern = adornment_of(atom, bound)
            worklist.append((atom.predicate, len(atom.args), literal_pattern))
            # The caller's prefix asks the callee's magic set.
            rewritten.add_rule(
                DatalogRule(
                    Atom(
                        magic_name(atom.predicate, literal_pattern),
                        _bound_terms(atom, bound),
                    ),
                    (DatalogLiteral(sup_atom),),
                )
            )
            body_atom = Atom(adorned_name(atom.predicate, literal_pattern), atom.args)
        else:
            body_atom = atom
        if literal.positive:
            bound |= literal.variables()
        next_terms = _sup_terms(bound, needed_after[i + 1])
        next_atom = Atom(sup_of(i + 1), next_terms)
        rewritten.add_rule(
            DatalogRule(
                next_atom,
                (
                    DatalogLiteral(sup_atom),
                    DatalogLiteral(body_atom, literal.positive),
                ),
            )
        )
        sup_atom = next_atom

    rewritten.add_rule(
        DatalogRule(
            Atom(adorned_name(head.predicate, pattern), head.args),
            (DatalogLiteral(sup_atom),),
        )
    )


def answer(program, goal, strategy="indexed", planner="histogram",
           shards=None, workers=None):
    """Answer *goal* against *program* by magic-set rewriting: rewrite,
    evaluate the rewritten program with a fresh
    :class:`~repro.datalog.engine.DatalogEngine` of the given *strategy*
    and *planner* (plus *shards* / *workers* when the strategy is
    ``"parallel"``), and extract the goal's bindings.

    Returns ``(bindings, magic_program, engine)`` — the engine is the inner
    one that evaluated the rewrite; its ``statistics`` describe the
    goal-directed fixpoint (this is where ``QueryResult``'s counters come
    from).  Raises :class:`~repro.exceptions.MagicRewriteError` exactly when
    :func:`rewrite` does.
    """
    from repro.datalog.engine import DatalogEngine

    magic_program = rewrite(program, goal)
    engine = DatalogEngine(
        magic_program.program, strategy=strategy, planner=planner,
        shards=shards, workers=workers, check="off",
    )
    model = engine.least_model()
    return magic_program.answers(model), magic_program, engine
