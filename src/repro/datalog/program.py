"""Datalog programs: facts, rules, literals.

A :class:`DatalogProgram` is a set of ground facts plus rules
``head :- body`` where the head is an atom and the body a sequence of
literals (atoms or negated atoms; negation must be stratified for the engine
to accept the program).  Rules must be *safe*: every variable of the head and
of every negative literal must occur in some positive body literal — the
classical range-restriction that also underlies the paper's notion of a rule
(Definition 6.3).

Programs convert to and from FOPCE sentences so that the same database can be
fed to the Datalog engine, to the first-order prover and to the ``demo``
evaluator; this is the "Σ could be a Datalog program" decoupling of
Section 5.1.
"""

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ReproError, UnsafeRuleError
from repro.logic.builders import conj, forall
from repro.logic.syntax import And, Atom, Forall, Implies, Not, free_variables
from repro.logic.terms import Parameter, Term, Variable


@dataclass(frozen=True)
class DatalogLiteral:
    """A body literal: an atom with a sign."""

    atom: Atom
    positive: bool = True

    def __str__(self):
        rendered = f"{self.atom.predicate}({', '.join(str(a) for a in self.atom.args)})"
        return rendered if self.positive else f"not {rendered}"

    def variables(self):
        """The set of :class:`~repro.logic.terms.Variable` arguments of the
        literal's atom."""
        return {a for a in self.atom.args if isinstance(a, Variable)}


@dataclass(frozen=True)
class DatalogFact:
    """A ground fact."""

    atom: Atom

    def __post_init__(self):
        if any(not isinstance(a, Parameter) for a in self.atom.args):
            raise ReproError(f"facts must be ground: {self.atom}")

    def __str__(self):
        return f"{self.atom.predicate}({', '.join(str(a) for a in self.atom.args)})."


@dataclass(frozen=True)
class DatalogRule:
    """A rule ``head :- body``.

    The body may be empty, in which case the head must be ground and the rule
    behaves as a fact.
    """

    head: Atom
    body: Tuple[DatalogLiteral, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "body", tuple(self.body))
        self._check_safety()

    def _check_safety(self):
        # Delegated to the static analyzer so that construction-time
        # rejection and `analyze_program` linting share one per-variable
        # message format (rule text + offending variable).  Imported lazily:
        # analyze imports this module at load time, not the reverse.
        from repro.datalog.analyze import rule_safety

        diagnostics = rule_safety(self)
        if diagnostics:
            raise UnsafeRuleError(
                "; ".join(d.message for d in diagnostics), diagnostics=diagnostics
            )

    def is_fact(self):
        """True when the rule has an empty body (a ground head stored in
        rule form)."""
        return not self.body

    def variables(self):
        """Every variable mentioned by the rule, head and body combined."""
        found = {a for a in self.head.args if isinstance(a, Variable)}
        for literal in self.body:
            found |= literal.variables()
        return found

    def __str__(self):
        head = f"{self.head.predicate}({', '.join(str(a) for a in self.head.args)})"
        if not self.body:
            return f"{head}."
        return f"{head} :- {', '.join(str(l) for l in self.body)}."


class DatalogProgram:
    """A collection of facts and rules over an implicit schema."""

    def __init__(self, facts=(), rules=()):
        self.facts = []
        self.rules = []
        # Declared output predicates (``(name, arity)`` pairs): the static
        # analyzer's reachability checks treat everything that cannot feed
        # an output as dead code.  Empty means "infer the outputs" — every
        # consumerless predicate counts, so nothing is ever flagged.
        self.outputs = set()
        for fact in facts:
            self.add_fact(fact)
        for rule in rules:
            self.add_rule(rule)

    # -- construction ------------------------------------------------------
    def add_fact(self, fact):
        """Add a ground fact (a :class:`DatalogFact` or a ground atom)."""
        if isinstance(fact, Atom):
            fact = DatalogFact(fact)
        if not isinstance(fact, DatalogFact):
            raise TypeError(f"expected a fact, got {fact!r}")
        self.facts.append(fact)
        return fact

    def add_rule(self, rule):
        """Add a rule; ground bodiless rules are stored as facts.

        Range restriction is re-validated here (raising
        :class:`~repro.exceptions.UnsafeRuleError`) so that an unsafe rule
        can never reach the engine, even if the rule object was tampered
        with after construction.
        """
        if not isinstance(rule, DatalogRule):
            raise TypeError(f"expected a DatalogRule, got {rule!r}")
        rule._check_safety()
        if rule.is_fact():
            return self.add_fact(DatalogFact(rule.head))
        self.rules.append(rule)
        return rule

    def rule(self, head, *body):
        """Convenience: ``program.rule(head_atom, atom1, Not-style pairs...)``.

        Body items may be atoms (positive literals), ``(atom, False)`` pairs
        or :class:`DatalogLiteral` instances.
        """
        literals = []
        for item in body:
            if isinstance(item, DatalogLiteral):
                literals.append(item)
            elif isinstance(item, Atom):
                literals.append(DatalogLiteral(item, True))
            elif isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], Atom):
                literals.append(DatalogLiteral(item[0], bool(item[1])))
            else:
                raise TypeError(f"cannot interpret body item {item!r}")
        return self.add_rule(DatalogRule(head, tuple(literals)))

    def declare_output(self, predicate, arity):
        """Declare ``predicate/arity`` an *output* of the program.

        Outputs drive the static analyzer's dead-code reachability checks
        (:mod:`repro.datalog.analyze`): with at least one declaration,
        rules and predicates that cannot contribute to any output are
        reported as dead (``DL008``/``DL009``).  Declarations never change
        evaluation — the engine's dead-rule pruning stays restricted to
        rules that provably cannot fire.
        """
        self.outputs.add((predicate, int(arity)))
        return self

    # -- inspection ---------------------------------------------------------
    def predicates(self):
        """Return every ``(name, arity)`` pair mentioned by the program."""
        found = set()
        for fact in self.facts:
            found.add((fact.atom.predicate, fact.atom.arity))
        for rule in self.rules:
            found.add((rule.head.predicate, rule.head.arity))
            for literal in rule.body:
                found.add((literal.atom.predicate, literal.atom.arity))
        return found

    def idb_predicates(self):
        """Predicates defined by at least one rule head (intensional)."""
        return {(r.head.predicate, r.head.arity) for r in self.rules}

    def edb_predicates(self):
        """Predicates that appear only in facts / rule bodies (extensional)."""
        return self.predicates() - self.idb_predicates()

    def parameters(self):
        """Every parameter mentioned by the program."""
        found = set()
        for fact in self.facts:
            found.update(fact.atom.args)
        for rule in self.rules:
            for term in rule.head.args:
                if isinstance(term, Parameter):
                    found.add(term)
            for literal in rule.body:
                for term in literal.atom.args:
                    if isinstance(term, Parameter):
                        found.add(term)
        return found

    def rules_for(self, predicate, arity):
        """Return the rules whose head predicate is ``predicate/arity``."""
        return [
            r
            for r in self.rules
            if r.head.predicate == predicate and r.head.arity == arity
        ]

    def facts_for(self, predicate):
        """Return the fact atoms of the given predicate name."""
        return [f.atom for f in self.facts if f.atom.predicate == predicate]

    def is_definite(self):
        """Return True when no rule body contains a negated literal."""
        return all(l.positive for r in self.rules for l in r.body)

    # -- conversion to first-order sentences ---------------------------------
    def to_sentences(self):
        """Render the program as FOPCE sentences (facts plus universally
        quantified implications).  Negative body literals become negated
        atoms in the antecedent."""
        sentences = [fact.atom for fact in self.facts]
        for rule in self.rules:
            body_parts = [
                literal.atom if literal.positive else Not(literal.atom)
                for literal in rule.body
            ]
            implication = Implies(conj(body_parts), rule.head)
            variables = sorted(rule.variables(), key=lambda v: v.name)
            sentences.append(
                forall([v.name for v in variables], implication) if variables else implication
            )
        return sentences

    def __len__(self):
        return len(self.facts) + len(self.rules)

    def __str__(self):
        lines = [str(f) for f in self.facts] + [str(r) for r in self.rules]
        return "\n".join(lines)
