"""Clark's completion of a Datalog program (Clark 1978).

Definitions 3.3 and 3.4 of the paper judge integrity-constraint satisfaction
for "Prolog-like" databases against ``Comp(DB)`` — the completion of the
program — rather than against the program itself.  The completion of a
predicate gathers every clause with that predicate in the head into a single
*if-and-only-if* definition::

    p(x̄) ≡ ∃ȳ1 (x̄ = t̄1 ∧ body1) ∨ ... ∨ ∃ȳk (x̄ = t̄k ∧ bodyk)

A predicate with no clauses at all completes to ``∀x̄ ~p(x̄)``.  Unique names
axioms are not emitted because FOPCE builds unique names into its semantics.

The completion is returned as FOPCE sentences, so the ordinary prover can
check satisfiability and entailment against it — exactly what the
constraint-satisfaction definitions need.
"""

from repro.logic.builders import conj, disj, forall, exists
from repro.logic.syntax import Equals, Iff, Not, Atom
from repro.logic.terms import Parameter, Variable, fresh_variable


def _definition_variables(arity, avoid):
    """Fresh head variables x1..xn for the completed definition."""
    variables = []
    taken = set(avoid)
    for index in range(arity):
        candidate = Variable(f"x{index + 1}")
        while candidate.name in taken:
            candidate = fresh_variable(avoid=taken, prefix=f"x{index + 1}_")
        taken.add(candidate.name)
        variables.append(candidate)
    return variables


def _clause_disjunct(head_variables, head_args, body_literals):
    """Build ``∃ȳ (x̄ = t̄ ∧ body)`` for one clause."""
    equalities = [Equals(hv, arg) for hv, arg in zip(head_variables, head_args)]
    body_parts = []
    clause_variables = set()
    for literal in body_literals:
        clause_variables |= literal.variables()
        body_parts.append(literal.atom if literal.positive else Not(literal.atom))
    matrix = conj(equalities + body_parts)
    head_argument_variables = {a for a in head_args if isinstance(a, Variable)}
    existential_variables = sorted(
        clause_variables | head_argument_variables, key=lambda v: v.name
    )
    if existential_variables:
        return exists([v.name for v in existential_variables], matrix)
    return matrix


def completed_definition(program, predicate, arity):
    """Return the completed definition of ``predicate/arity`` as a FOPCE
    sentence."""
    head_variables = _definition_variables(arity, avoid=())
    head_atom = Atom(predicate, tuple(head_variables))
    disjuncts = []
    for fact_atom in program.facts_for(predicate):
        if fact_atom.arity != arity:
            continue
        equalities = [Equals(hv, arg) for hv, arg in zip(head_variables, fact_atom.args)]
        disjuncts.append(conj(equalities))
    for rule in program.rules_for(predicate, arity):
        disjuncts.append(_clause_disjunct(head_variables, rule.head.args, rule.body))
    if not disjuncts:
        if arity == 0:
            return Not(head_atom)
        return forall([v.name for v in head_variables], Not(head_atom))
    definition = Iff(head_atom, disj(disjuncts))
    if arity == 0:
        return definition
    return forall([v.name for v in head_variables], definition)


def clark_completion(program, include_facts_only_predicates=True):
    """Return ``Comp(DB)`` as a list of FOPCE sentences.

    Every predicate mentioned by the program receives a completed definition.
    Set *include_facts_only_predicates* to False to complete only the
    intensional (rule-defined) predicates and keep the extensional ones open
    — a variation some authors use; the default completes everything, which
    is the reading under which Theorem 7.2 relates the completion to
    ``Closure(Σ)`` for relational databases.
    """
    completed = []
    predicates = sorted(program.predicates())
    for predicate, arity in predicates:
        if not include_facts_only_predicates and not program.rules_for(predicate, arity):
            for fact_atom in program.facts_for(predicate):
                if fact_atom.arity == arity:
                    completed.append(fact_atom)
            continue
        completed.append(completed_definition(program, predicate, arity))
    return completed
