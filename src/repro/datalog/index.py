"""Hash indexes over ground Datalog facts.

The engine's joins are driven by a :class:`FactIndex`, which maintains two
levels of hashing over a set of ground atoms:

* a **relation index** — one bucket per ``(predicate, arity)`` pair, so a
  join never scans facts of the wrong predicate;
* an **argument index** — for every relation, one hash map per argument
  position from a parameter value to the facts carrying that value at that
  position.  Probing with the currently bound join prefix returns only the
  facts that can possibly match, which is what turns the engine's
  nested-loop joins into hash joins.

Indexes are cheap to build incrementally: the semi-naive fixpoint keeps one
index for the full database and a small one for the per-round delta, and
merges the delta into the database bucket-wise with :meth:`FactIndex.absorb`
(no per-fact rehashing of the receiving side).  Deletion is symmetric:
:meth:`FactIndex.discard` removes one fact and :meth:`FactIndex.retract_all`
subtracts a whole delta bucket-wise, which is what the incremental
view-maintenance layer (:mod:`repro.datalog.incremental`) uses to keep a
materialized least model consistent under retractions.
"""

from itertools import chain

EMPTY = frozenset()


class FactIndex:
    """A mutable set of ground atoms with per-relation and per-argument
    hash indexes."""

    __slots__ = ("_relations", "_arguments", "_size")

    def __init__(self, atoms=()):
        # (predicate, arity) -> set of atoms
        self._relations = {}
        # (predicate, arity) -> tuple of per-position dicts: value -> set of atoms
        self._arguments = {}
        self._size = 0
        self.add_all(atoms)

    # -- construction --------------------------------------------------------
    def add(self, atom):
        """Insert *atom*; return True when it was not already present."""
        key = (atom.predicate, len(atom.args))
        bucket = self._relations.get(key)
        if bucket is None:
            bucket = set()
            self._relations[key] = bucket
            self._arguments[key] = tuple({} for _ in range(key[1]))
        if atom in bucket:
            return False
        bucket.add(atom)
        positional = self._arguments[key]
        for position, value in enumerate(atom.args):
            slot = positional[position].get(value)
            if slot is None:
                positional[position][value] = {atom}
            else:
                slot.add(atom)
        self._size += 1
        return True

    def add_all(self, atoms):
        """Insert every atom; return how many were new."""
        added = 0
        for atom in atoms:
            if self.add(atom):
                added += 1
        return added

    def absorb(self, other):
        """Merge another :class:`FactIndex` (typically a semi-naive delta)
        into this one bucket-wise, without rehashing the facts already held
        here.  Assumes ``other`` is disjoint from this index (the fixpoint
        guarantees deltas only contain genuinely new facts)."""
        for key, bucket in other._relations.items():
            mine = self._relations.get(key)
            if mine is None:
                self._relations[key] = set(bucket)
                self._arguments[key] = tuple(
                    {value: set(atoms) for value, atoms in positional.items()}
                    for positional in other._arguments[key]
                )
                self._size += len(bucket)
                continue
            before = len(mine)
            mine |= bucket
            self._size += len(mine) - before
            own_positions = self._arguments[key]
            for position, positional in enumerate(other._arguments[key]):
                target = own_positions[position]
                for value, atoms in positional.items():
                    slot = target.get(value)
                    if slot is None:
                        target[value] = set(atoms)
                    else:
                        slot |= atoms
        return self

    # -- deletion ------------------------------------------------------------
    def discard(self, atom):
        """Remove *atom*; return True when it was present.

        The deletion dual of :meth:`add`: the fact is removed from its
        relation bucket and from every per-argument-position bucket, and
        emptied value buckets are dropped so that :meth:`selectivity` keeps
        seeing honest distinct-value counts.
        """
        key = (atom.predicate, len(atom.args))
        bucket = self._relations.get(key)
        if bucket is None or atom not in bucket:
            return False
        bucket.remove(atom)
        positional = self._arguments[key]
        for position, value in enumerate(atom.args):
            slot = positional[position].get(value)
            if slot is not None:
                slot.discard(atom)
                if not slot:
                    del positional[position][value]
        self._size -= 1
        return True

    def discard_all(self, atoms):
        """Remove every atom; return how many were actually present."""
        removed = 0
        for atom in atoms:
            if self.discard(atom):
                removed += 1
        return removed

    def retract_all(self, other):
        """Subtract another :class:`FactIndex` from this one bucket-wise —
        the deletion dual of :meth:`absorb`.

        Facts held by *other* but not by this index are ignored, so the
        operation is a plain set difference per relation.  Returns how many
        facts were removed.
        """
        removed = 0
        for key, bucket in other._relations.items():
            mine = self._relations.get(key)
            if not mine:
                continue
            before = len(mine)
            mine -= bucket
            removed += before - len(mine)
            own_positions = self._arguments[key]
            for position, positional in enumerate(other._arguments[key]):
                target = own_positions[position]
                for value, atoms in positional.items():
                    slot = target.get(value)
                    if slot is None:
                        continue
                    slot -= atoms
                    if not slot:
                        del target[value]
        self._size -= removed
        return removed

    # -- lookup --------------------------------------------------------------
    def __contains__(self, atom):
        bucket = self._relations.get((atom.predicate, len(atom.args)))
        return bucket is not None and atom in bucket

    def __len__(self):
        return self._size

    def __iter__(self):
        return chain.from_iterable(self._relations.values())

    def __bool__(self):
        return self._size > 0

    def relations(self):
        """The set of ``(predicate, arity)`` keys with at least one fact."""
        return {key for key, bucket in self._relations.items() if bucket}

    def relation(self, predicate, arity):
        """All facts of ``predicate/arity`` (a set; treat as read-only)."""
        return self._relations.get((predicate, arity), EMPTY)

    def count(self, predicate, arity):
        """How many facts of ``predicate/arity`` are held."""
        return len(self._relations.get((predicate, arity), EMPTY))

    def candidates(self, predicate, arity, bound):
        """Return the smallest indexed bucket consistent with *bound*, an
        iterable of ``(position, value)`` pairs for the argument positions
        already fixed by the join prefix.

        The result is a superset of the matching facts restricted to the most
        selective single-position bucket; callers still unify the remaining
        positions.  Returns an empty set as soon as any bound position has no
        facts with that value.
        """
        key = (predicate, arity)
        best = self._relations.get(key)
        if not best:
            return EMPTY
        positional = self._arguments[key]
        for position, value in bound:
            bucket = positional[position].get(value)
            if not bucket:
                return EMPTY
            if len(bucket) < len(best):
                best = bucket
        return best

    def histogram(self, predicate, arity, position):
        """The bucket-size histogram of one argument *position* of
        ``predicate/arity``: a dict mapping each distinct value to how many
        facts carry it there (empty for an unknown relation).  This is the
        raw material :class:`~repro.datalog.stats.JoinStatistics` snapshots
        into planner estimates; treat the result as read-only."""
        positional = self._arguments.get((predicate, arity))
        if positional is None:
            return {}
        return {value: len(bucket) for value, bucket in positional[position].items()}

    def histogram_sizes(self, predicate, arity, position):
        """Just the bucket sizes of :meth:`histogram`, as a list — what the
        planner's per-round refresh actually consumes, without building a
        value-keyed dict."""
        positional = self._arguments.get((predicate, arity))
        if positional is None:
            return []
        return [len(bucket) for bucket in positional[position].values()]

    def selectivity(self, predicate, arity, positions):
        """Estimate how many facts of ``predicate/arity`` survive binding
        the given argument *positions* (an iterable of position indexes).

        This is the *uniform-distribution* estimate — relation cardinality
        divided by the distinct-value count of each bound position — used
        by the join planner when no observed histograms are available (see
        :class:`~repro.datalog.stats.JoinStatistics` for the
        histogram-based replacement).  Returns a float fact-count estimate.
        """
        key = (predicate, arity)
        bucket = self._relations.get(key)
        if not bucket:
            return 0.0
        estimate = float(len(bucket))
        positional = self._arguments[key]
        for position in positions:
            distinct = len(positional[position])
            if distinct > 1:
                estimate /= distinct
        return estimate

    def __repr__(self):
        rendered = ", ".join(
            f"{predicate}/{arity}:{len(bucket)}"
            for (predicate, arity), bucket in sorted(self._relations.items())
        )
        return f"FactIndex({self._size} facts; {rendered})"
