"""Observed join statistics for the Datalog planner.

The indexed engine orders rule bodies greedily by estimated selectivity.
Until this module existed the only estimate available was
:meth:`~repro.datalog.index.FactIndex.selectivity` — relation cardinality
divided by the distinct-value count of each bound position, i.e. a
*uniform-distribution* assumption: every value of a column is presumed to
own an equally sized bucket.  Real workloads are skewed (a hub node in a
graph, a hot key in a join chain), and under skew the uniform estimate
systematically underestimates the cost of probing a column whose few heavy
values carry most of the facts.

:class:`JoinStatistics` replaces that assumption with *observed* per-column
bucket-size histograms, snapshotted from the live
:class:`~repro.datalog.index.FactIndex` as evaluation proceeds:

* for every ``(predicate, arity)`` relation and every argument position, a
  :class:`ColumnStatistics` records the total fact count, the distinct-value
  count, the largest bucket and the sum of squared bucket sizes;
* the planner-facing estimate for probing a bound column is the
  **frequency-weighted expected bucket size** ``Σ sizeᵢ² / Σ sizeᵢ`` — the
  expected number of matching facts when the probe value is drawn from the
  data distribution itself (which is exactly what a join does: probe values
  come from the facts of the other literals).  For a uniform column this
  collapses to ``total / distinct``, so the histogram estimate strictly
  generalises the old one.

The engine refreshes the histograms at the start of every fixpoint round
(:meth:`JoinStatistics.refresh`), so derived relations that grow during
evaluation — the typical recursive predicate — feed their observed shape
back into the next round's join plans.  The snapshot is O(distinct values)
per relation, which is negligible next to the joins themselves.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnStatistics:
    """The bucket-size histogram summary of one argument position.

    ``total`` is the relation cardinality, ``distinct`` the number of
    distinct values at this position, ``max_bucket`` the largest bucket and
    ``sum_of_squares`` the sum of squared bucket sizes (the raw material of
    the frequency-weighted estimate).
    """

    total: int
    distinct: int
    max_bucket: int
    sum_of_squares: int

    @property
    def mean_bucket(self):
        """The uniform-assumption bucket size: ``total / distinct``."""
        return self.total / self.distinct if self.distinct else 0.0

    @property
    def expected_probe_matches(self):
        """Expected matches when probing with a value drawn from the data
        distribution: ``sum_of_squares / total`` (≥ :attr:`mean_bucket`,
        with equality exactly for uniform columns)."""
        return self.sum_of_squares / self.total if self.total else 0.0

    @property
    def skew(self):
        """How non-uniform the column is: ``expected_probe_matches /
        mean_bucket`` (1.0 for a perfectly uniform column)."""
        mean = self.mean_bucket
        return self.expected_probe_matches / mean if mean else 1.0


class JoinStatistics:
    """Per-relation, per-argument-position histograms observed from a live
    :class:`~repro.datalog.index.FactIndex`, plus the planner-facing
    selectivity estimate built on them.

    One instance belongs to one evaluation (the engine creates a fresh one
    per fixpoint); :meth:`refresh` re-snapshots every relation, and
    :meth:`selectivity` answers the planner with the frequency-weighted
    estimate, falling back to the index's uniform estimate for relations
    not yet snapshotted.
    """

    __slots__ = ("_columns", "refreshes")

    def __init__(self):
        self._columns = {}
        self.refreshes = 0

    def refresh(self, index):
        """Re-snapshot the bucket-size histograms of every relation held by
        *index*.  Called by the engine at the start of each fixpoint round;
        returns ``self`` for chaining.

        Only bucket *sizes* feed the summary, so indexes exposing
        ``histogram_sizes`` (both storage backends do) hand them over
        without materialising a value-keyed dict per refresh; others fall
        back to the full :meth:`histogram
        <repro.datalog.index.FactIndex.histogram>` contract."""
        self.refreshes += 1
        sizes_of = getattr(index, "histogram_sizes", None)
        if sizes_of is None:
            def sizes_of(predicate, arity, position):
                return index.histogram(predicate, arity, position).values()
        columns = {}
        for key in index.relations():
            predicate, arity = key
            total = index.count(predicate, arity)
            columns[key] = tuple(
                self._summarise(sizes_of(predicate, arity, position), total)
                for position in range(arity)
            )
        self._columns = columns
        return self

    @staticmethod
    def _summarise(sizes, total):
        """Fold an iterable of bucket *sizes* into a
        :class:`ColumnStatistics`."""
        distinct = 0
        max_bucket = 0
        sum_of_squares = 0
        for size in sizes:
            distinct += 1
            if size > max_bucket:
                max_bucket = size
            sum_of_squares += size * size
        return ColumnStatistics(total, distinct, max_bucket, sum_of_squares)

    def column(self, predicate, arity, position):
        """The :class:`ColumnStatistics` of one argument position, or
        ``None`` when the relation has not been snapshotted (empty or not
        yet derived)."""
        columns = self._columns.get((predicate, arity))
        return columns[position] if columns is not None else None

    def relation_total(self, predicate, arity):
        """The snapshotted cardinality of ``predicate/arity`` (0 when the
        relation has not been seen)."""
        columns = self._columns.get((predicate, arity))
        return columns[0].total if columns else 0

    def selectivity(self, predicate, arity, positions):
        """Estimate how many facts of ``predicate/arity`` survive binding
        the argument *positions* (an iterable of position indexes).

        The estimate starts from the snapshotted cardinality and multiplies,
        per bound position, by the fraction of the relation an average
        *data-drawn* probe hits (``expected_probe_matches / total``) —
        independence across positions is assumed, as in the uniform
        estimate it replaces.  Relations with no snapshot estimate to 0.0
        (nothing to join against yet).
        """
        columns = self._columns.get((predicate, arity))
        if not columns:
            return 0.0
        total = columns[0].total
        estimate = float(total)
        for position in positions:
            column = columns[position]
            if column.total:
                estimate *= column.expected_probe_matches / column.total
        return estimate

    def snapshot(self):
        """The current histograms as a plain dict
        ``{(predicate, arity): (ColumnStatistics, ...)}`` — for diagnostics
        and tests; mutating it does not affect the planner."""
        return dict(self._columns)

    def __repr__(self):
        rendered = ", ".join(
            f"{predicate}/{arity}:{columns[0].total if columns else 0}"
            for (predicate, arity), columns in sorted(self._columns.items())
        )
        return f"JoinStatistics({self.refreshes} refreshes; {rendered})"
