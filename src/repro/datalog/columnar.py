"""Columnar interned fact storage: dense-id relations for the Datalog engine.

The object storage layer (:mod:`repro.datalog.index`) stores facts as hash
sets of :class:`~repro.logic.syntax.Atom` objects.  That is the right API
surface — every caller speaks atoms — but the wrong inner loop: each join
probe pays a Python-level ``__hash__``/``__eq__`` on atoms and parameters,
each derived head allocates an ``Atom``, and the resident model is a graph
of millions of small objects the cyclic GC must keep re-tracing (the ~20x
GC tax measured in the PR 5 benchmarks).

This module keeps the surface and replaces the loop.  Constants are
interned to dense integer ids (:mod:`repro.datalog.interner`), and facts
become **rows** — tuples of ids — living in per-``(predicate, arity)``
:class:`ColumnarRelation` instances:

* a **membership set** of id tuples (int tuples hash at C speed — no
  Python ``__hash__`` dispatch);
* per-argument-position **columns** (``array('q')`` — one machine word per
  value, no per-value object overhead), materialised lazily from the live
  rows for compact export (:meth:`RowStore.to_arrays` — the int-array form
  sharded delta exchange ships instead of pickled atom objects);
* per-position **bucket maps** ``id -> set of rows``, the same probe
  structure :class:`~repro.datalog.index.FactIndex` keeps per value, so
  the engine's greedy bound-prefix planning carries over unchanged.

Three faces are exposed, innermost first:

* :class:`RowStore` — a set of ``(key, row)`` facts with the FactIndex
  method surface (``add``/``absorb``/``discard``/``retract_all``/
  ``candidates``/``histogram``/``selectivity``/iteration), used by the
  incremental maintenance drivers, which treat facts as opaque tokens;
* the **compiled join** (:func:`compile_schedule` / :func:`compiled_for` /
  :func:`columnar_fixpoint`) — the engine's semi-naive indexed fixpoint
  with each rule-body schedule *generated as a specialized Python
  function* (constants become int literals, variables become locals), so
  the inner loop compares machine ints instead of unifying atom objects
  and never allocates a dict or an ``Atom`` per candidate;
* :class:`ColumnarFactIndex` — the public Atom-face drop-in for
  :class:`~repro.datalog.index.FactIndex`: atoms in, atoms out (decoded to
  the identical interned parameter objects), rows inside.

Everything here is selected by ``storage="columnar"`` on
:class:`~repro.datalog.engine.DatalogEngine`,
:class:`~repro.datalog.incremental.MaterializedModel`,
:class:`~repro.datalog.shard.ShardedFactIndex` and
``EpistemicDatabase.datalog_view``; ``storage="objects"`` keeps the
original representation, and the two are property-tested equivalent
(``tests/test_datalog_columnar.py``).
"""

from array import array

from repro.datalog.interner import Interner, fast_atom
from repro.logic.terms import Variable
from repro.semantics.worlds import World

EMPTY = frozenset()


class ColumnarRelation:
    """The rows of one ``(predicate, arity)`` relation.

    ``rows`` is the membership structure — a set of id tuples, hashed and
    compared at C speed.  The two derived structures are materialised
    lazily from it and kept consistent only while they exist:

    * :attr:`buckets` — one ``id -> set of rows`` map per argument
      position, the probe structure mirroring
      :class:`~repro.datalog.index.FactIndex`'s per-value buckets (emptied
      value buckets are dropped so distinct-value counts stay honest).
      Built on first probe; short-lived relations that are only ever
      enumerated — the per-round semi-naive deltas — never pay for them.
    * :attr:`columns` — one ``array('q')`` per position, the at-rest /
      exchange face (:meth:`RowStore.to_arrays`); machine-word compactness
      is paid only when rows are actually shipped.
    """

    __slots__ = ("arity", "rows", "_buckets", "_columns")

    def __init__(self, arity):
        self.arity = arity
        self.rows = set()
        self._buckets = None
        self._columns = None

    @property
    def buckets(self):
        """The per-position ``id -> set of rows`` probe maps, built on
        demand from the live rows (treat as read-only)."""
        buckets = self._buckets
        if buckets is None:
            buckets = self._buckets = tuple({} for _ in range(self.arity))
            for row in self.rows:
                for bucket, value in zip(buckets, row):
                    owners = bucket.get(value)
                    if owners is None:
                        bucket[value] = {row}
                    else:
                        owners.add(row)
        return buckets

    @property
    def columns(self):
        """One ``array('q')`` per argument position, row-aligned — built on
        demand from the live rows (treat as read-only; any mutation of the
        relation invalidates it)."""
        columns = self._columns
        if columns is None:
            ordered = list(self.rows)
            columns = self._columns = tuple(
                array("q", [row[position] for row in ordered])
                for position in range(self.arity)
            )
        return columns

    def add(self, row):
        """Insert *row*; return True when it was not already present."""
        rows = self.rows
        if row in rows:
            return False
        rows.add(row)
        buckets = self._buckets
        if buckets is not None:
            for bucket, value in zip(buckets, row):
                owners = bucket.get(value)
                if owners is None:
                    bucket[value] = {row}
                else:
                    owners.add(row)
        self._columns = None
        return True

    def discard(self, row):
        """Remove *row*; return True when it was present."""
        rows = self.rows
        if row not in rows:
            return False
        rows.discard(row)
        buckets = self._buckets
        if buckets is not None:
            for bucket, value in zip(buckets, row):
                owners = bucket.get(value)
                if owners is not None:
                    owners.discard(row)
                    if not owners:
                        del bucket[value]
        self._columns = None
        return True

    def absorb(self, other):
        """Merge another relation of the same arity set-wise, assuming
        disjointness (the semi-naive delta guarantee) — the columnar
        counterpart of :meth:`FactIndex.absorb
        <repro.datalog.index.FactIndex.absorb>`.  Materialised probe
        buckets are maintained in place: bucket-wise when *other* has its
        own, row-wise when it was enumeration-only (the typical delta)."""
        buckets = self._buckets
        if buckets is not None:
            theirs = other._buckets
            if theirs is not None:
                for bucket, their_bucket in zip(buckets, theirs):
                    for value, owners in their_bucket.items():
                        mine = bucket.get(value)
                        if mine is None:
                            bucket[value] = set(owners)
                        else:
                            mine |= owners
            else:
                for row in other.rows:
                    for bucket, value in zip(buckets, row):
                        owners = bucket.get(value)
                        if owners is None:
                            bucket[value] = {row}
                        else:
                            owners.add(row)
        self.rows |= other.rows
        self._columns = None
        return self

    def best_bucket(self, bound):
        """The smallest bucket consistent with *bound* ``(position, id)``
        pairs — a superset of the matching rows, empty as soon as any bound
        position has no rows with that id (mirrors
        :meth:`FactIndex.candidates <repro.datalog.index.FactIndex.candidates>`)."""
        best = self.rows
        if not best:
            return EMPTY
        buckets = self.buckets
        for position, value in bound:
            owners = buckets[position].get(value)
            if not owners:
                return EMPTY
            if len(owners) < len(best):
                best = owners
        return best

    def histogram(self, position):
        """``id -> row count`` for one argument position."""
        return {value: len(owners) for value, owners in self.buckets[position].items()}

    def histogram_sizes(self, position):
        """Just the bucket sizes of one argument position, as a list (what
        the planner refresh consumes)."""
        return [len(owners) for owners in self.buckets[position].values()]

    def __len__(self):
        return len(self.rows)

    def __contains__(self, row):
        return row in self.rows

    def __iter__(self):
        return iter(self.rows)

    def __repr__(self):
        return f"ColumnarRelation(arity={self.arity}, {len(self.rows)} rows)"


class RowStore:
    """A mutable set of ``(key, row)`` facts — ``key`` a ``(predicate,
    arity)`` pair, ``row`` a tuple of interned ids — offering the
    :class:`~repro.datalog.index.FactIndex` method surface over opaque
    row facts plus a key-explicit hot face (:meth:`get`) for the compiled
    join."""

    __slots__ = ("_relations", "_size")

    def __init__(self, facts=()):
        self._relations = {}
        self._size = 0
        self.add_all(facts)

    # -- hot face ------------------------------------------------------------
    def get(self, key):
        """The :class:`ColumnarRelation` of *key*, or ``None`` — the direct
        probe of the compiled join's inner loop."""
        return self._relations.get(key)

    def items(self):
        """``(key, relation)`` pairs (treat the relations as read-only)."""
        return self._relations.items()

    # -- construction --------------------------------------------------------
    def add_row(self, key, row):
        """Insert one row under *key*; return True when it was new."""
        relation = self._relations.get(key)
        if relation is None:
            relation = ColumnarRelation(key[1])
            self._relations[key] = relation
        if relation.add(row):
            self._size += 1
            return True
        return False

    def add(self, fact):
        """Insert one ``(key, row)`` fact; return True when it was new."""
        return self.add_row(fact[0], fact[1])

    def add_all(self, facts):
        """Insert every fact; return how many were new."""
        added = 0
        for key, row in facts:
            if self.add_row(key, row):
                added += 1
        return added

    def absorb(self, other):
        """Merge another :class:`RowStore` relation-wise, assuming
        disjointness (the semi-naive delta guarantee)."""
        for key, theirs in other._relations.items():
            mine = self._relations.get(key)
            if mine is None:
                mine = ColumnarRelation(key[1])
                self._relations[key] = mine
            mine.absorb(theirs)
            self._size += len(theirs)
        return self

    # -- deletion ------------------------------------------------------------
    def discard_row(self, key, row):
        """Remove one row; return True when it was present."""
        relation = self._relations.get(key)
        if relation is not None and relation.discard(row):
            self._size -= 1
            return True
        return False

    def discard(self, fact):
        """Remove one ``(key, row)`` fact; return True when it was present."""
        return self.discard_row(fact[0], fact[1])

    def discard_all(self, facts):
        """Remove every fact; return how many were actually present."""
        removed = 0
        for key, row in facts:
            if self.discard_row(key, row):
                removed += 1
        return removed

    def retract_all(self, other):
        """Subtract another :class:`RowStore`; rows not held here are
        ignored.  Returns how many rows were removed."""
        removed = 0
        for key, theirs in other._relations.items():
            mine = self._relations.get(key)
            if mine is None:
                continue
            for row in theirs.rows:
                if mine.discard(row):
                    removed += 1
        self._size -= removed
        return removed

    # -- lookup --------------------------------------------------------------
    def __contains__(self, fact):
        relation = self._relations.get(fact[0])
        return relation is not None and fact[1] in relation.rows

    def __len__(self):
        return self._size

    def __iter__(self):
        for key, relation in self._relations.items():
            for row in relation.rows:
                yield (key, row)

    def __bool__(self):
        return self._size > 0

    def relations(self):
        """The set of ``(predicate, arity)`` keys with at least one row."""
        return {key for key, relation in self._relations.items() if relation.rows}

    def relation(self, predicate, arity):
        """All rows of ``predicate/arity`` (the live membership set; treat
        as read-only)."""
        relation = self._relations.get((predicate, arity))
        return relation.rows if relation is not None else EMPTY

    def count(self, predicate, arity):
        """How many rows of ``predicate/arity`` are held."""
        relation = self._relations.get((predicate, arity))
        return len(relation.rows) if relation is not None else 0

    def candidates(self, predicate, arity, bound):
        """The ``(key, row)`` facts a join step may match given *bound*
        ``(position, id)`` pairs — the smallest consistent bucket, as a
        generator of row facts (the driver face the incremental maintenance
        passes probe)."""
        key = (predicate, arity)
        relation = self._relations.get(key)
        if relation is None:
            return iter(EMPTY)
        return ((key, row) for row in relation.best_bucket(bound))

    def histogram(self, predicate, arity, position):
        """``id -> row count`` for one argument position of
        ``predicate/arity`` (empty for an unknown relation)."""
        relation = self._relations.get((predicate, arity))
        return relation.histogram(position) if relation is not None else {}

    def histogram_sizes(self, predicate, arity, position):
        """Just the bucket sizes of one argument position (the planner
        refresh face)."""
        relation = self._relations.get((predicate, arity))
        return relation.histogram_sizes(position) if relation is not None else []

    def selectivity(self, predicate, arity, positions):
        """The uniform-distribution estimate of
        :meth:`FactIndex.selectivity
        <repro.datalog.index.FactIndex.selectivity>`, numerically identical
        under the id <-> parameter bijection (same cardinalities, same
        distinct counts), so both storages produce the same join plans."""
        relation = self._relations.get((predicate, arity))
        if relation is None or not relation.rows:
            return 0.0
        estimate = float(len(relation.rows))
        for position in positions:
            distinct = len(relation.buckets[position])
            if distinct > 1:
                estimate /= distinct
        return estimate

    # -- array exchange ------------------------------------------------------
    def to_arrays(self):
        """Export every relation as ``{key: (count, [array('q'), ...])}`` —
        one machine-word array per column.  This is the compact shipping
        form for shard exchange: no atom objects, no per-value boxing, and
        ``array`` supports zero-copy buffer transport."""
        return {
            key: (len(relation.rows), [array("q", column) for column in relation.columns])
            for key, relation in self._relations.items()
            if relation.rows
        }

    @classmethod
    def from_arrays(cls, exported):
        """Rebuild a :class:`RowStore` from :meth:`to_arrays` output."""
        store = cls()
        for key, (count, columns) in exported.items():
            if key[1] == 0:
                if count:
                    store.add_row(key, ())
                continue
            for row in zip(*columns):
                store.add_row(key, row)
        return store

    def __repr__(self):
        rendered = ", ".join(
            f"{predicate}/{arity}:{len(relation.rows)}"
            for (predicate, arity), relation in sorted(self._relations.items())
        )
        return f"RowStore({self._size} rows; {rendered})"


class ColumnarFactIndex:
    """The Atom-face drop-in for :class:`~repro.datalog.index.FactIndex`
    backed by a :class:`RowStore` and an :class:`Interner`.

    Atoms go in (encoded to id rows), atoms come out (decoded to the
    identical interned parameter objects); every method of the FactIndex
    contract is preserved, including bucket-wise :meth:`absorb` /
    :meth:`retract_all` fast paths when both sides share an interner.
    """

    __slots__ = ("_interner", "_store")

    def __init__(self, atoms=(), interner=None):
        self._interner = interner if interner is not None else Interner()
        self._store = RowStore()
        self.add_all(atoms)

    @classmethod
    def from_store(cls, store, interner):
        """Wrap an existing :class:`RowStore` (no copy) — the engine's
        zero-cost handoff from the id-space fixpoint to the Atom-face
        index."""
        index = cls.__new__(cls)
        index._interner = interner
        index._store = store
        return index

    @property
    def interner(self):
        """The shared symbol table (one per engine / model / shard group)."""
        return self._interner

    @property
    def store(self):
        """The backing :class:`RowStore` (the id-space face)."""
        return self._store

    # -- construction --------------------------------------------------------
    def add(self, atom):
        """Insert *atom*; return True when it was not already present."""
        key, row = self._interner.encode_atom(atom)
        return self._store.add_row(key, row)

    def add_all(self, atoms):
        """Insert every atom; return how many were new."""
        added = 0
        encode = self._interner.encode_atom
        store = self._store
        for atom in atoms:
            key, row = encode(atom)
            if store.add_row(key, row):
                added += 1
        return added

    def absorb(self, other):
        """Merge another index; relation/bucket-wise (no re-encoding) when
        *other* is columnar over the same interner and assumed disjoint,
        atom-by-atom otherwise."""
        if isinstance(other, ColumnarFactIndex) and other._interner is self._interner:
            self._store.absorb(other._store)
            return self
        self.add_all(iter(other))
        return self

    # -- deletion ------------------------------------------------------------
    def discard(self, atom):
        """Remove *atom*; return True when it was present."""
        row = self._interner.row_of(atom)
        if row is None:
            return False
        return self._store.discard_row((atom.predicate, len(atom.args)), row)

    def discard_all(self, atoms):
        """Remove every atom; return how many were actually present."""
        removed = 0
        for atom in atoms:
            if self.discard(atom):
                removed += 1
        return removed

    def retract_all(self, other):
        """Subtract another index; row-wise (no re-encoding) when *other*
        is columnar over the same interner.  Returns how many facts were
        removed."""
        if isinstance(other, ColumnarFactIndex) and other._interner is self._interner:
            return self._store.retract_all(other._store)
        return self.discard_all(iter(other))

    # -- lookup --------------------------------------------------------------
    def __contains__(self, atom):
        row = self._interner.row_of(atom)
        if row is None:
            return False
        return ((atom.predicate, len(atom.args)), row) in self._store

    def __len__(self):
        return len(self._store)

    def __iter__(self):
        parameters = self._interner.parameters
        for (predicate, _arity), relation in self._store.items():
            for row in relation.rows:
                yield fast_atom(predicate, tuple([parameters[i] for i in row]))

    def __bool__(self):
        return bool(self._store)

    def relations(self):
        """The set of ``(predicate, arity)`` keys with at least one fact."""
        return self._store.relations()

    def relation(self, predicate, arity):
        """All facts of ``predicate/arity``, decoded (a new set)."""
        parameters = self._interner.parameters
        return {
            fast_atom(predicate, tuple([parameters[i] for i in row]))
            for row in self._store.relation(predicate, arity)
        }

    def count(self, predicate, arity):
        """How many facts of ``predicate/arity`` are held."""
        return self._store.count(predicate, arity)

    def candidates(self, predicate, arity, bound):
        """The decoded facts of the smallest indexed bucket consistent with
        *bound* ``(position, parameter)`` pairs — a superset of the matching
        facts, empty as soon as a bound value is unknown to the data."""
        relation = self._store.get((predicate, arity))
        if relation is None:
            return EMPTY
        id_of = self._interner.id_of
        encoded = []
        for position, value in bound:
            ident = id_of(value)
            if ident is None:
                return EMPTY
            encoded.append((position, ident))
        bucket = relation.best_bucket(encoded)
        if not bucket:
            return EMPTY
        parameters = self._interner.parameters
        return (
            fast_atom(predicate, tuple([parameters[i] for i in row])) for row in bucket
        )

    def histogram(self, predicate, arity, position):
        """The bucket-size histogram of one argument position, keyed by
        decoded parameter (the FactIndex contract)."""
        parameter = self._interner.parameter
        return {
            parameter(value): size
            for value, size in self._store.histogram(predicate, arity, position).items()
        }

    def histogram_sizes(self, predicate, arity, position):
        """Just the bucket sizes of one argument position — no decoding
        needed, sizes are representation-independent."""
        return self._store.histogram_sizes(predicate, arity, position)

    def selectivity(self, predicate, arity, positions):
        """The uniform-distribution selectivity estimate (numerically equal
        to the object index's on the same fact set)."""
        return self._store.selectivity(predicate, arity, positions)

    def __repr__(self):
        rendered = ", ".join(
            f"{predicate}/{arity}:{len(relation.rows)}"
            for (predicate, arity), relation in sorted(self._store.items())
        )
        return f"ColumnarFactIndex({len(self._store)} facts; {rendered})"


def decode_world(stores, interner):
    """Decode one or more :class:`RowStore` / :class:`ColumnarRelation`
    holders into a :class:`~repro.semantics.worlds.World`, seeding the
    world's per-predicate index in the same pass (the columnar analogue of
    :meth:`World.from_fact_index <repro.semantics.worlds.World.from_fact_index>`)."""
    if isinstance(stores, RowStore):
        stores = (stores,)
    parameters = interner.parameters
    atoms = []
    buckets = {}
    for store in stores:
        for (predicate, _arity), relation in store.items():
            if not relation.rows:
                continue
            bucket = buckets.setdefault(predicate, [])
            for row in relation.rows:
                atom = fast_atom(predicate, tuple([parameters[i] for i in row]))
                atoms.append(atom)
                bucket.append(atom)
    world = World.__new__(World)
    world._atoms = frozenset(atoms)
    world._hash = hash(world._atoms)
    world._by_predicate = {
        predicate: tuple(bucket) for predicate, bucket in buckets.items()
    }
    return world


# -- the compiled id-space join ------------------------------------------------
#
# A schedule is compiled to a *generated Python function*: one nested
# ``for`` loop per positive body literal, with interned constant ids
# embedded as int literals, join variables held in local variables (no
# binding dict, no per-candidate copy), bucket probes hoisted to the loop
# that binds their prefix, and the non-duplicating ``old``/``delta`` source
# discipline emitted as plain membership guards.  The inner loop therefore
# executes only local loads, int compares and C-level dict/set operations —
# no Atom allocation and no Python-level ``__hash__`` dispatch — which is
# where the columnar backend's speedup over the object index comes from.
#
# The generated function takes tuples of :class:`RowStore` fragments:
# ``sources`` form the full database (one store sequentially; the shard
# stores plus a private overlay under the parallel scheduler), ``delta_enum``
# is what the ``"delta"`` step enumerates (one slice under shard fan-out)
# and ``delta_full`` the whole round delta consulted by the ``"old"``
# discipline — exactly the split :class:`~repro.datalog.parallel._DeltaShard`
# makes on the object path.  Store-fragment counts are baked into the
# generated membership chains, so the compilation cache keys on them.


def _entry_expression(arg, slots, interner):
    """The generated-code expression for one id-space pattern entry: an int
    literal for a constant, the slot's local variable for a variable."""
    if isinstance(arg, Variable):
        return f"v{slots[arg]}"
    return repr(interner.intern(arg))


def _row_expression(args, slots, interner):
    """The generated-code tuple expression building a row from bound
    locals and constant ids."""
    if not args:
        return "()"
    parts = [_entry_expression(arg, slots, interner) for arg in args]
    return "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"


def compile_schedule(rule, schedule, interner, shape=(1, 0), provenance=False):
    """Compile a ``(literal, source)`` schedule (the output of
    :meth:`DatalogEngine._schedule
    <repro.datalog.engine.DatalogEngine._schedule>`) into a join-pass
    function ``pass_(sources, delta_full, delta_enum, out)`` that adds the
    derived ``(key, row)`` facts not already stored to *out* (a set).

    *shape* is ``(len(sources), len(delta_full))`` — membership chains over
    the store fragments are unrolled at generation time.

    With *provenance* the generated function takes one extra parameter,
    ``rec``, called as ``rec((v0, ..., vN))`` — the bound slot values, in
    slot order — for each genuinely new derivation (inside the same absence
    guard that admits the fact).  The variable of each slot is published on
    the function as ``pass_.slot_variables``, so the driver can decode the
    values back into a binding; the non-provenance variant emits *no* extra
    code, keeping the default inner loop byte-for-byte unchanged.
    """
    source_count, delta_count = shape
    slots = {}
    for literal, _source in schedule:
        for arg in literal.atom.args:
            if isinstance(arg, Variable) and arg not in slots:
                slots[arg] = len(slots)
    env = {"__EMPTY": {}}
    lines = []

    def emit(depth, text):
        lines.append("    " * depth + text)

    parameters = "sources, delta_full, delta_enum, out" + (
        ", rec" if provenance else ""
    )
    emit(0, f"def pass_({parameters}):")
    emit(1, "__add = out.add")
    head_key_name = "__HK"
    env[head_key_name] = (rule.head.predicate, rule.head.arity)
    for fragment in range(source_count):
        emit(1, f"__t = sources[{fragment}].get({head_key_name})")
        emit(1, f"__hr{fragment} = __t.rows if __t is not None else __EMPTY")
    for index, (literal, source) in enumerate(schedule):
        key_name = f"__K{index}"
        env[key_name] = (literal.atom.predicate, len(literal.atom.args))
        if literal.positive:
            pool = "delta_enum" if source == "delta" else "sources"
            emit(1, f"__p{index} = []")
            emit(1, f"for __s in {pool}:")
            emit(2, f"__r = __s.get({key_name})")
            emit(2, "if __r is not None and __r.rows:")
            emit(3, f"__p{index}.append(__r)")
            if source == "old":
                for fragment in range(delta_count):
                    emit(1, f"__t = delta_full[{fragment}].get({key_name})")
                    emit(1, f"__sk{index}_{fragment} = "
                            "__t.rows if __t is not None else __EMPTY")
        else:
            for fragment in range(source_count):
                emit(1, f"__t = sources[{fragment}].get({key_name})")
                emit(1, f"__nr{index}_{fragment} = "
                        "__t.rows if __t is not None else __EMPTY")

    # The body proper: a one-iteration dummy loop makes guard `continue`s
    # valid even before the first real candidate loop.
    emit(1, "for __once in ((),):")
    depth = 2
    bound = set()
    for index, (literal, source) in enumerate(schedule):
        atom = literal.atom
        if not literal.positive:
            row_expr = _row_expression(atom.args, slots, interner)
            emit(depth, f"__n = {row_expr}")
            membership = " or ".join(
                f"__n in __nr{index}_{fragment}" for fragment in range(source_count)
            )
            emit(depth, f"if {membership}:")
            emit(depth + 1, "continue")
            continue
        const_probes = []
        var_probes = []
        const_checks = []
        var_checks = []
        same_checks = []
        binds = []
        seen_here = {}
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Variable):
                slot = slots[arg]
                if arg in bound:
                    var_probes.append((position, slot))
                    var_checks.append((position, slot))
                elif arg in seen_here:
                    # A repeat within this literal: its local is only
                    # assigned inside the row loop, so compare the row
                    # positions directly instead of probing/checking v{slot}.
                    same_checks.append((position, seen_here[arg]))
                else:
                    seen_here[arg] = position
                    binds.append((position, slot))
            else:
                ident = interner.intern(arg)
                const_probes.append((position, ident))
                const_checks.append((position, ident))
        bound.update(seen_here)
        emit(depth, f"for __r in __p{index}:")
        depth += 1
        emit(depth, "__best = __r.rows")
        if const_probes or var_probes:
            emit(depth, "__bk = __r.buckets")
            for position, ident in const_probes:
                emit(depth, f"__b = __bk[{position}].get({ident})")
                emit(depth, "if not __b:")
                emit(depth + 1, "continue")
                emit(depth, "if len(__b) < len(__best):")
                emit(depth + 1, "__best = __b")
            for position, slot in var_probes:
                emit(depth, f"__b = __bk[{position}].get(v{slot})")
                emit(depth, "if not __b:")
                emit(depth + 1, "continue")
                emit(depth, "if len(__b) < len(__best):")
                emit(depth + 1, "__best = __b")
        row = f"__row{index}"
        emit(depth, f"for {row} in __best:")
        depth += 1
        if source == "old" and delta_count:
            membership = " or ".join(
                f"{row} in __sk{index}_{fragment}" for fragment in range(delta_count)
            )
            emit(depth, f"if {membership}:")
            emit(depth + 1, "continue")
        for position, ident in const_checks:
            emit(depth, f"if {row}[{position}] != {ident}:")
            emit(depth + 1, "continue")
        for position, slot in var_checks:
            emit(depth, f"if {row}[{position}] != v{slot}:")
            emit(depth + 1, "continue")
        for position, first in same_checks:
            emit(depth, f"if {row}[{position}] != {row}[{first}]:")
            emit(depth + 1, "continue")
        for position, slot in binds:
            emit(depth, f"v{slot} = {row}[{position}]")

    head_expr = _row_expression(rule.head.args, slots, interner)
    emit(depth, f"__h = {head_expr}")
    emit(depth, f"__f = ({head_key_name}, __h)")
    absent = " and ".join(
        ["__f not in out"]
        + [f"__h not in __hr{fragment}" for fragment in range(source_count)]
    )
    emit(depth, f"if {absent}:")
    emit(depth + 1, "__add(__f)")
    if provenance:
        ordered_slots = sorted(slots.values())
        values = ", ".join(f"v{slot}" for slot in ordered_slots)
        if len(ordered_slots) == 1:
            values += ","
        emit(depth + 1, f"rec(({values}))")

    code = compile("\n".join(lines), f"<columnar join: {rule}>", "exec")
    exec(code, env)
    pass_ = env["pass_"]
    pass_.slot_variables = tuple(sorted(slots, key=slots.get))
    return pass_


def compiled_for(cache, rule, delta_position, schedule, interner, shape=(1, 0),
                 provenance=False):
    """The generated join-pass function for one (rule, delta position,
    schedule, fragment shape, provenance) combination, memoized in *cache* —
    schedules stabilise after a round or two, so generation is paid once per
    distinct plan."""
    key = (rule, delta_position, tuple(schedule), shape, provenance)
    compiled = cache.get(key)
    if compiled is None:
        compiled = compile_schedule(rule, schedule, interner, shape, provenance)
        cache[key] = compiled
    return compiled


def fresh_delta(new_facts):
    """Build the round delta :class:`RowStore` from a set of new ``(key,
    row)`` facts in bulk: rows are grouped per relation and the membership
    set and buckets are built in single passes (the facts are already
    deduplicated, so no per-row presence checks are needed)."""
    by_key = {}
    for key, row in new_facts:
        rows = by_key.get(key)
        if rows is None:
            by_key[key] = rows = []
        rows.append(row)
    store = RowStore()
    for key, rows in by_key.items():
        relation = ColumnarRelation(key[1])
        relation.rows = set(rows)
        store._relations[key] = relation
        store._size += len(rows)
    return store


def _edge_recorder(sink, rule, slot_variables, parameters):
    """A per-pass closure decoding one compiled-join provenance callback —
    the bound slot values, in slot order — back into atom space and feeding
    the engine's provenance sink with ``(head, rule, ground positive
    body)``."""
    head_args = rule.head.args
    positive_atoms = [literal.atom for literal in rule.body if literal.positive]

    def record(values):
        binding = {
            variable: parameters[value]
            for variable, value in zip(slot_variables, values)
        }
        head = fast_atom(
            rule.head.predicate,
            tuple(
                binding[arg] if isinstance(arg, Variable) else arg
                for arg in head_args
            ),
        )
        body = tuple(
            fast_atom(
                atom.predicate,
                tuple(
                    binding[arg] if isinstance(arg, Variable) else arg
                    for arg in atom.args
                ),
            )
            for atom in positive_atoms
        )
        sink(head, rule, body)

    return record


def columnar_fixpoint(engine, rules, store, interner, cache):
    """The engine's indexed semi-naive fixpoint in id space: the exact
    round/pass structure (and statistics counters) of
    :meth:`DatalogEngine._indexed_fixpoint
    <repro.datalog.engine.DatalogEngine._indexed_fixpoint>`, with joins
    executed by the generated pass functions over *store*.

    When the engine's provenance sink is armed, the provenance variants of
    the compiled joins are used instead (see :func:`compile_schedule`); the
    default path runs the exact generated code it always did.
    """
    statistics = engine.statistics
    tracer = engine.tracer
    sink = engine._provenance_sink
    recording = sink is not None
    parameters = interner.parameters
    sources = (store,)
    delta = None
    delta_sources = ()
    first_round = True
    while True:
        statistics.iterations += 1
        round_span = tracer.span("fixpoint.round", iteration=statistics.iterations)
        with round_span:
            stats = engine._planner_stats(store)
            new_facts = set()
            for rule in rules:
                if first_round:
                    statistics.rule_applications += 1
                    schedule = engine._schedule(rule, index=store, stats=stats)
                    join = compiled_for(
                        cache, rule, None, schedule, interner, (1, 0), recording
                    )
                    with tracer.span("join.pass", rule=rule.head.predicate):
                        if recording:
                            join(sources, (), (), new_facts, _edge_recorder(
                                sink, rule, join.slot_variables, parameters
                            ))
                        else:
                            join(sources, (), (), new_facts)
                    continue
                produced_this_rule = set()
                for delta_position, literal in enumerate(rule.body):
                    if not literal.positive:
                        continue
                    if not delta.count(literal.atom.predicate, len(literal.atom.args)):
                        statistics.delta_passes_skipped += 1
                        continue
                    statistics.rule_applications += 1
                    schedule = engine._schedule(
                        rule, delta_position=delta_position, index=store, stats=stats
                    )
                    join = compiled_for(
                        cache, rule, delta_position, schedule, interner, (1, 1),
                        recording,
                    )
                    with tracer.span(
                        "join.pass",
                        rule=rule.head.predicate,
                        delta_position=delta_position,
                    ):
                        if recording:
                            join(
                                sources, delta_sources, delta_sources,
                                produced_this_rule,
                                _edge_recorder(
                                    sink, rule, join.slot_variables, parameters
                                ),
                            )
                        else:
                            join(
                                sources, delta_sources, delta_sources,
                                produced_this_rule,
                            )
                new_facts |= produced_this_rule
            round_span.annotate(facts_derived=len(new_facts))
        if not new_facts:
            return
        statistics.facts_derived += len(new_facts)
        delta = fresh_delta(new_facts)
        delta_sources = (delta,)
        store.absorb(delta)
        first_round = False
