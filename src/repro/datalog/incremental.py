"""Incremental view maintenance for the Datalog engine.

PR 2 made ``DatalogEngine.least_model()`` fast; this module makes it
*updatable*.  A :class:`MaterializedModel` wraps an engine and keeps the
materialized least model consistent under batches of EDB insertions **and
deletions** at delta cost, instead of re-running the fixpoint:

* **counting** (non-recursive predicates) — every fact carries the number of
  distinct derivations supporting it (EDB membership counts as one).  The
  semi-naive non-duplicating decomposition enumerates each derivation exactly
  once, so insertions increment and deletions decrement counts exactly; a
  fact disappears precisely when its count reaches zero.  Because a
  non-recursive strongly connected component is a single predicate that never
  occurs in its own rule bodies, one maintenance round per component
  suffices.
* **DRed** (recursive components) — counting is unsound under recursion (a
  cycle of facts can keep itself alive), so recursive components use
  delete-and-rederive: *overdelete* everything whose derivation touches a
  deleted fact, *rederive* the overdeleted facts that still have an
  alternative derivation (or are EDB facts), then propagate insertions
  semi-naively.

Components are maintained in dependency order (the same Tarjan condensation
the engine's stratifier uses), so stratified negation falls out naturally:
by the time a component is processed, the predicates it negates are final,
and a *deletion* below can insert above (``not q`` became true) while an
*insertion* below can delete above — both directions are driven off the same
per-literal "support changed" notion.

The derivation-counting passes evaluate rule bodies with the engine's
positional source discipline generalised to mixed insert/delete deltas:
for a pass whose *delta position* is body literal *i*, literals before *i*
must have **unchanged** support and literals after *i* are unrestricted;
increment passes evaluate in the new database and decrement passes in the
old one.  A derivation whose status changed is then enumerated exactly once
— at its first changed body position — which is what keeps the counts exact.

``apply(insertions, deletions)`` also rewrites ``program.facts`` so the
wrapped engine, the materialized index and the program never disagree, and
installs the maintained model into the engine's cache so a subsequent
``engine.least_model()`` is O(1).  :meth:`MaterializedModel.peek` answers
"what would the model be if this batch were applied?" without leaving any
trace — the safe way for transaction previews to look at pending state.

The maintenance joins are planned like the engine's: under the default
``planner="histogram"`` the per-batch passes (and the initial counting
fixpoint) order their body literals greedily by observed bucket-size
histograms (:class:`~repro.datalog.stats.JoinStatistics`, re-snapshotted
per apply / per build round) instead of textual order; ``"uniform"`` keeps
the unplanned ordering as an ablation baseline.  When the wrapped engine
uses ``strategy="parallel"``, the materialized state lives in a
:class:`~repro.datalog.shard.ShardedFactIndex` with the engine's shard
count, so counting updates, DRed overdeletion (``retract_all``) and
rederivation all apply shard-locally.
"""

from collections import defaultdict
from dataclasses import dataclass

from repro.datalog.engine import (
    PLANNERS,
    DatalogEngine,
    _head_atom,
    _ground_negative,
    _match,
    _strongly_connected_components,
)
from repro.datalog.index import FactIndex
from repro.datalog.program import DatalogFact
from repro.datalog.stats import JoinStatistics
from repro.exceptions import ReproError
from repro.logic.syntax import Atom
from repro.logic.terms import Parameter
from repro.semantics.worlds import World


@dataclass
class MaintenanceStatistics:
    """Counters describing the maintenance work done so far.

    ``applies`` counts :meth:`MaterializedModel.apply` calls, ``rounds`` the
    within-component propagation rounds, ``delta_passes`` the executed
    delta-position join passes, ``facts_added`` / ``facts_removed`` the net
    model-level changes, ``overdeleted`` / ``rederived`` the DRed traffic,
    and ``rebuilds`` how often the model fell back to a full fixpoint
    (initial construction included).
    """

    applies: int = 0
    rounds: int = 0
    delta_passes: int = 0
    facts_added: int = 0
    facts_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    rebuilds: int = 0


@dataclass(frozen=True)
class UpdateResult:
    """The net effect of one :meth:`MaterializedModel.apply` call.

    ``edb_added`` / ``edb_removed`` are the base-fact changes that actually
    took place (set semantics: re-inserting a present fact or deleting an
    absent one is a no-op), ``derived_added`` / ``derived_removed`` the
    resulting changes to the materialized model as a whole.
    """

    edb_added: frozenset
    edb_removed: frozenset
    derived_added: frozenset
    derived_removed: frozenset

    def inverse(self):
        """The EDB delta that undoes this update (used by ``peek``)."""
        return self.edb_removed, self.edb_added


class _Component:
    """One maintenance unit: a strongly connected component of the IDB
    dependency graph, its rules, and whether it needs DRed."""

    __slots__ = ("predicates", "rules", "recursive")

    def __init__(self, predicates, rules, recursive):
        self.predicates = predicates
        self.rules = rules
        self.recursive = recursive


def _as_ground_atom(value):
    if isinstance(value, DatalogFact):
        value = value.atom
    if not isinstance(value, Atom):
        raise ReproError(f"expected a ground atom or DatalogFact, got {value!r}")
    if any(not isinstance(arg, Parameter) for arg in value.args):
        raise ReproError(f"updates must be ground: {value}")
    return value


class MaterializedModel:
    """A continuously maintained least model of a Datalog program.

    Wraps a :class:`~repro.datalog.engine.DatalogEngine` (one is built when
    not supplied) and keeps the model of ``engine.program`` materialized in a
    :class:`~repro.datalog.index.FactIndex`.  EDB updates arrive through
    :meth:`apply`; everything else (``model()``, ``holds()``, ``query()``)
    reads the maintained state.

    Rule changes are not maintained incrementally: if the program's rules are
    mutated behind our back, the next access notices (content comparison, the
    same discipline the engine's cache uses) and falls back to a full
    rebuild.

    ``strategy`` (plus ``shards`` when it is ``"parallel"``, plus
    ``storage``) configures the wrapped engine when one has to be built;
    with a parallel engine the materialized index is sharded (see the
    module docstring).  When the engine stores columnar
    (``storage="columnar"``), the materialized index is a
    :class:`~repro.datalog.columnar.ColumnarFactIndex` over the engine's
    interner — membership, DRed overdeletion/rederivation set algebra and
    the counting table are all keyed on interned id-tuples, while the
    maintenance joins keep running at the atom face through the identical
    index contract.  ``planner`` selects the maintenance join planning —
    ``"histogram"`` (observed bucket-size histograms) or ``"uniform"``
    (unplanned textual order); default: the wrapped engine's planner.
    """

    def __init__(self, program_or_engine, strategy="indexed", shards=None, planner=None,
                 storage=None):
        if isinstance(program_or_engine, DatalogEngine):
            if shards is not None:
                raise ValueError("pass shards via the engine when wrapping one")
            if storage is not None:
                raise ValueError("pass storage via the engine when wrapping one")
            self.engine = program_or_engine
        elif strategy == "parallel":
            self.engine = DatalogEngine(
                program_or_engine, strategy=strategy, shards=shards,
                storage="objects" if storage is None else storage,
            )
        else:
            if shards is not None:
                raise ValueError("shards are only meaningful with strategy='parallel'")
            self.engine = DatalogEngine(
                program_or_engine, strategy=strategy,
                storage="objects" if storage is None else storage,
            )
        self.storage = self.engine.storage
        self._interner = self.engine.interner
        self.planner = self.engine.planner if planner is None else planner
        if self.planner not in PLANNERS:
            raise ValueError(f"planner must be one of {', '.join(PLANNERS)}")
        self.planner_statistics = JoinStatistics()
        self._maintenance_stats = None
        self.program = self.engine.program
        self.statistics = MaintenanceStatistics()
        self._index = None
        self._edb = None
        self._counts = None
        self._components = None
        self._kind = None
        self._world = None
        self._facts_key = None
        self._rules_key = None
        self.refresh()
        # From now on the engine's least_model() pulls from the maintained
        # state on a cache miss instead of re-running its fixpoint.
        self.engine._model_provider = self.model

    # -- public API ----------------------------------------------------------
    def model(self):
        """The maintained least model as an immutable
        :class:`~repro.semantics.worlds.World`.

        The world is built lazily from the fact index (seeding its
        per-predicate buckets from the index's relation buckets) and cached
        until the next :meth:`apply`; it is also installed into the wrapped
        engine's cache, so ``engine.least_model()`` returns the same object
        without re-running the fixpoint.
        """
        self._ensure_consistent()
        if self._world is None:
            self._world = World.from_fact_index(self._index)
            self.engine.install_model(self._world)
        return self._world

    def holds(self, atom):
        """Return True when the ground *atom* is in the maintained model —
        an index probe with no world construction (preceded, like every
        read, by the cheap program-content check of
        :meth:`_ensure_consistent`)."""
        self._ensure_consistent()
        return _as_ground_atom(atom) in self._index

    def query(self, atom, mode="materialized"):
        """Answer a goal *atom* against the maintained model; returns a
        :class:`~repro.datalog.engine.QueryResult` (a list of binding dicts
        plus counters).

        The default mode ``"materialized"`` probes the maintained index
        with the atom's bound arguments — already goal-directed,
        O(candidate bucket) with no evaluation at all.  Any other mode
        (``"auto"`` / ``"magic"`` / ``"full"``) is delegated to the wrapped
        engine's :meth:`~repro.datalog.engine.DatalogEngine.query`, e.g. to
        compare a magic-set evaluation against the maintained answer.
        """
        self._ensure_consistent()
        if mode != "materialized":
            return self.engine.query(atom, mode=mode)
        from repro.datalog.engine import QueryResult
        from repro.datalog.magic import adornment_of

        bound = [
            (position, arg)
            for position, arg in enumerate(atom.args)
            if isinstance(arg, Parameter)
        ]
        results = []
        touched = 0
        for fact in self._index.candidates(atom.predicate, len(atom.args), bound):
            touched += 1
            binding = _match(atom.args, fact.args, {})
            if binding is not None:
                results.append(binding)
        return QueryResult(
            results, goal=atom, mode="materialized",
            adornment=adornment_of(atom), facts_touched=touched,
        )

    def derivation_count(self, atom):
        """The number of derivations supporting *atom* (EDB membership
        counts as one).  Only meaningful for facts of non-recursive
        predicates — recursive components are maintained set-wise by DRed —
        and for extensional facts, where it is 1 or 0."""
        self._ensure_consistent()
        atom = _as_ground_atom(atom)
        key = (atom.predicate, len(atom.args))
        if self._kind.get(key) == "counting":
            return self._counts.get(self._count_key(atom), 0)
        return 1 if atom in self._index else 0

    def apply(self, insertions=(), deletions=()):
        """Apply a batch of EDB insertions and deletions at delta cost.

        Both arguments are iterables of ground atoms (or
        :class:`~repro.datalog.program.DatalogFact`).  Set semantics: a fact
        both deleted and inserted in the same batch stays present, inserting
        a present fact and deleting an absent one are no-ops.
        ``program.facts`` is rewritten to match, so the program remains the
        single source of truth.  Returns an :class:`UpdateResult`.
        """
        self._ensure_consistent()
        insertions = {_as_ground_atom(a) for a in insertions}
        deletions = {_as_ground_atom(a) for a in deletions}
        edb_removed = (deletions & self._edb) - insertions
        edb_added = insertions - self._edb
        self.statistics.applies += 1
        if not edb_added and not edb_removed:
            return UpdateResult(frozenset(), frozenset(), frozenset(), frozenset())

        # Keep the program in sync (set semantics over the fact list).
        if edb_removed:
            self.program.facts[:] = [
                fact for fact in self.program.facts if fact.atom not in edb_removed
            ]
        for atom in sorted(
            edb_added, key=lambda a: (a.predicate, tuple(p.name for p in a.args))
        ):
            self.program.facts.append(DatalogFact(atom))
        self._edb = (self._edb - edb_removed) | edb_added

        with self.engine.tracer.span(
            "maintenance.batch",
            insertions=len(edb_added),
            deletions=len(edb_removed),
        ) as span:
            derived_added, derived_removed = self._propagate(edb_added, edb_removed)
            span.annotate(
                facts_added=len(derived_added), facts_removed=len(derived_removed)
            )

        self._facts_key = tuple(self.program.facts)
        self._world = None
        self.engine._model = None  # stale until model() reinstalls
        self.statistics.facts_added += len(derived_added)
        self.statistics.facts_removed += len(derived_removed)
        return UpdateResult(
            frozenset(edb_added),
            frozenset(edb_removed),
            frozenset(derived_added),
            frozenset(derived_removed),
        )

    def peek(self, insertions=(), deletions=(), reader=None):
        """Return the :class:`~repro.semantics.worlds.World` the model would
        have if the batch were applied — without changing anything.

        Implemented as apply + exact inverse apply (counting is integer-exact
        and DRed is set-exact, so the round trip restores the state
        bit-for-bit); :attr:`statistics` is snapshotted around the round
        trip, so not even the maintenance counters record the peek.  This is
        the API transaction previews should use: a peek can never poison the
        maintained state or the engine's cache.

        Building a :class:`World` materializes the whole model — O(model)
        even for a one-fact batch.  Callers that only need to probe a few
        predicates (the violation view's commit-time preview) pass a
        ``reader`` callable instead: it receives this model while the batch
        is applied and its return value becomes the peek's result, keeping
        the whole round trip O(delta + touched buckets).  The reader must
        not mutate the model.
        """
        facts_before = list(self.program.facts)
        saved_statistics = self.statistics
        self.statistics = MaintenanceStatistics()
        result = self.apply(insertions, deletions)
        try:
            if reader is None:
                outcome = World.from_fact_index(self._index)
            else:
                outcome = reader(self)
        finally:
            self.apply(*result.inverse())
            # The inverse apply restores the fact *set*; restore the exact
            # list order too so the peek is invisible to order-sensitive
            # readers of program.facts.
            self.program.facts[:] = facts_before
            self._facts_key = tuple(facts_before)
            self.statistics = saved_statistics
        return outcome

    def refresh(self):
        """Rebuild the materialized state from scratch (full fixpoint with
        derivation counting).  Called on construction and whenever the
        program was mutated other than through :meth:`apply`."""
        self.statistics.rebuilds += 1
        # Let the wrapped engine's static analyzer see the (possibly
        # mutated) program once per rebuild: diagnostics land on
        # ``engine.diagnostics`` and a strict engine rejects a defective
        # program before any maintenance state is built.  Maintenance
        # itself works from the full rule set — never-fire rules cost
        # nothing here (their joins are vacuous) and the maintained model
        # is identical either way.
        self.engine.ensure_checked()
        self._analyze()
        self._schedules = {}
        self._maintenance_stats = None
        self._edb = {fact.atom for fact in self.program.facts}
        self._index = self._new_index(self._edb)
        self._counts = defaultdict(int)
        encode = self._interner.encode_atom if self._interner is not None else None
        for atom in self._edb:
            if self._kind.get((atom.predicate, len(atom.args))) == "counting":
                self._counts[atom if encode is None else encode(atom)] += 1
        for component in self._components:
            self._build_component(component)
        self._world = None
        self._facts_key = tuple(self.program.facts)
        self._rules_key = tuple(self.program.rules)

    def metrics(self):
        """The maintenance counters as a flat ``maintenance.*`` snapshot
        (same shape as :meth:`DatalogEngine.metrics`); read at call time
        from :attr:`statistics`, which stays a plain dataclass."""
        from dataclasses import asdict

        return {
            f"maintenance.{name}": value
            for name, value in sorted(asdict(self.statistics).items())
        }

    def __contains__(self, atom):
        return self.holds(atom)

    def __len__(self):
        self._ensure_consistent()
        return len(self._index)

    def __repr__(self):
        return (
            f"MaterializedModel({len(self._index)} facts, "
            f"{len(self._components)} components, "
            f"{self.statistics.applies} applies)"
        )

    def _new_index(self, atoms=()):
        """A fresh materialized index: sharded with the engine's shard count
        when the wrapped engine evaluates in parallel, columnar over the
        engine's interner when the engine stores columnar, a plain
        :class:`~repro.datalog.index.FactIndex` otherwise."""
        engine = self.engine
        if engine.strategy == "parallel":
            from repro.datalog.shard import ShardedFactIndex

            return ShardedFactIndex(
                atoms, shards=engine.shards,
                storage=self.storage, interner=self._interner,
            )
        if self.storage == "columnar":
            from repro.datalog.columnar import ColumnarFactIndex

            return ColumnarFactIndex(atoms, interner=self._interner)
        return FactIndex(atoms)

    def _count_key(self, atom):
        """The key a derivation count is stored under: the atom itself under
        object storage, its interned ``((predicate, arity), id-row)`` under
        columnar — so the counting table never pins decoded atoms."""
        if self._interner is None:
            return atom
        return self._interner.encode_atom(atom)

    def _refresh_planner_stats(self):
        """Re-snapshot the maintenance planner's histograms from the live
        index; the snapshot also invalidates the cached maintenance
        schedules, which were ordered against the previous snapshot.  Under
        the uniform planner there is no snapshot and schedules never change
        shape, so both are left alone (a no-op returning ``None``)."""
        if self.planner != "histogram":
            self._maintenance_stats = None
        else:
            self._schedules = {}
            self._maintenance_stats = self.planner_statistics.refresh(self._index)
        return self._maintenance_stats

    # -- program analysis ------------------------------------------------------
    def _analyze(self):
        """Group the IDB into strongly connected components (dependency
        order), tag each as counting or DRed, and map predicates to kinds."""
        program = self.program
        idb = program.idb_predicates()
        successors = {key: set() for key in idb}
        for rule in program.rules:
            head_key = (rule.head.predicate, rule.head.arity)
            for literal in rule.body:
                body_key = (literal.atom.predicate, literal.atom.arity)
                if body_key in idb:
                    successors[head_key].add(body_key)
        components, _ = _strongly_connected_components(idb, successors)
        rules_for = defaultdict(list)
        for rule in program.rules:
            rules_for[(rule.head.predicate, rule.head.arity)].append(rule)
        self._components = []
        self._kind = {}
        for member_set in components:
            recursive = len(member_set) > 1 or any(
                key in successors[key] for key in member_set
            )
            rules = [rule for key in member_set for rule in rules_for[key]]
            self._components.append(_Component(member_set, rules, recursive))
            for key in member_set:
                self._kind[key] = "dred" if recursive else "counting"

    def _ensure_consistent(self):
        """Fall back to a full rebuild when the program was mutated outside
        :meth:`apply` (same content-comparison discipline as the engine's
        model cache)."""
        if (
            self._rules_key != tuple(self.program.rules)
            or self._facts_key != tuple(self.program.facts)
        ):
            self.refresh()

    # -- initial (counting) fixpoint -------------------------------------------
    def _build_component(self, component):
        """Run the component's fixpoint over the shared index, counting every
        derivation for counting components.  The engine's non-duplicating
        delta discipline guarantees each derivation is enumerated exactly
        once across the whole fixpoint, so the counts come out exact."""
        if not component.rules:
            return
        engine = self.engine
        counting = not component.recursive
        encode = self._interner.encode_atom if self._interner is not None else None
        delta = None
        first_round = True
        while True:
            # Feed the observed bucket shapes of the growing index into the
            # build joins, exactly as the engine's own fixpoint does.
            stats = (
                self.planner_statistics.refresh(self._index)
                if self.planner == "histogram"
                else None
            )
            new_facts = set()
            for rule in component.rules:
                if first_round:
                    schedule = engine._schedule(rule, index=self._index, stats=stats)
                    for derived in engine._indexed_join(
                        rule, schedule, self._index, None, {}, 0
                    ):
                        if counting:
                            self._counts[derived if encode is None else encode(derived)] += 1
                        if derived not in self._index:
                            new_facts.add(derived)
                    continue
                for position, literal in enumerate(rule.body):
                    if not literal.positive:
                        continue
                    if not delta.count(literal.atom.predicate, len(literal.atom.args)):
                        continue
                    schedule = engine._schedule(
                        rule, delta_position=position, index=self._index, stats=stats
                    )
                    for derived in engine._indexed_join(
                        rule, schedule, self._index, delta, {}, 0
                    ):
                        if counting:
                            self._counts[derived if encode is None else encode(derived)] += 1
                        if derived not in self._index:
                            new_facts.add(derived)
            if not new_facts:
                return
            delta = FactIndex(new_facts)
            self._index.absorb(delta)
            first_round = False

    # -- delta propagation ------------------------------------------------------
    def _propagate(self, edb_added, edb_removed):
        """Push an EDB delta through every component in dependency order.

        ``acc_plus`` / ``acc_minus`` accumulate all changes applied so far
        (EDB and lower components); each component sees them as its round-one
        delta and contributes its own net changes for the components above.
        Returns the net (added, removed) over the whole model.
        """
        # One histogram snapshot per batch: the maintenance passes of every
        # component order their joins against the pre-batch bucket shapes
        # (deltas are tiny next to the index, so mid-batch drift is noise).
        self._refresh_planner_stats()
        acc_plus = FactIndex()
        acc_minus = FactIndex()
        idb = self._kind
        # EDB changes for purely extensional predicates take effect
        # immediately; EDB changes for IDB predicates are handed to the
        # owning component (base-count / DRed-seed semantics).
        pending_plus = defaultdict(set)
        pending_minus = defaultdict(set)
        for atom in edb_added:
            key = (atom.predicate, len(atom.args))
            if key in idb:
                pending_plus[key].add(atom)
            elif self._index.add(atom):
                acc_plus.add(atom)
        for atom in edb_removed:
            key = (atom.predicate, len(atom.args))
            if key in idb:
                pending_minus[key].add(atom)
            elif self._index.discard(atom):
                acc_minus.add(atom)

        for component in self._components:
            own_plus = set()
            own_minus = set()
            for key in component.predicates:
                own_plus |= pending_plus.get(key, set())
                own_minus |= pending_minus.get(key, set())
            if component.recursive:
                added, removed = self._maintain_dred(
                    component, acc_plus, acc_minus, own_plus, own_minus
                )
            else:
                added, removed = self._maintain_counting(
                    component, acc_plus, acc_minus, own_plus, own_minus
                )
            acc_plus.add_all(added)
            acc_minus.add_all(removed)
        return set(acc_plus) - set(edb_added), set(acc_minus) - set(edb_removed)

    def _relevant(self, component, dplus, dminus):
        """True when the round delta can touch any rule body of the
        component (either polarity of any literal)."""
        for rule in component.rules:
            for literal in rule.body:
                key = (literal.atom.predicate, len(literal.atom.args))
                if dplus.count(*key) or dminus.count(*key):
                    return True
        return False

    def _maintain_counting(self, component, acc_plus, acc_minus, edb_plus, edb_minus):
        """Counting maintenance for a non-recursive component.

        Adjust base counts for the component's own EDB changes, fold the
        resulting presence transitions into the round-one delta together with
        everything accumulated below, run one set of increment/decrement
        passes, and turn count transitions into index updates.  (The loop is
        written generically, but a non-recursive component never feeds its
        own rule bodies, so it always terminates after the second round.)
        """
        added_net = set()
        removed_net = set()
        encode = self._interner.encode_atom if self._interner is not None else None
        born, died = set(), set()
        for atom in edb_plus:
            key = atom if encode is None else encode(atom)
            self._counts[key] += 1
            if self._counts[key] == 1:
                born.add(atom)
        for atom in edb_minus:
            key = atom if encode is None else encode(atom)
            self._counts[key] -= 1
            if self._counts[key] <= 0:
                died.add(atom)
        dplus = FactIndex(iter(acc_plus))
        dminus = FactIndex(iter(acc_minus))
        self._transition(born, died, dplus, dminus, added_net, removed_net)
        while (dplus or dminus) and self._relevant(component, dplus, dminus):
            self.statistics.rounds += 1
            touched = set()
            for rule in component.rules:
                for position, literal in enumerate(rule.body):
                    key = (literal.atom.predicate, len(literal.atom.args))
                    added_support = dplus if literal.positive else dminus
                    removed_support = dminus if literal.positive else dplus
                    if added_support.count(*key):
                        self.statistics.delta_passes += 1
                        schedule = self._maintenance_schedule(rule, position)
                        for derived in self._pass_join(
                            rule, schedule, "increment", dplus, dminus, {}, 0
                        ):
                            self._counts[derived if encode is None else encode(derived)] += 1
                            touched.add(derived)
                    if removed_support.count(*key):
                        self.statistics.delta_passes += 1
                        schedule = self._maintenance_schedule(rule, position)
                        for derived in self._pass_join(
                            rule, schedule, "decrement", dplus, dminus, {}, 0
                        ):
                            self._counts[derived if encode is None else encode(derived)] -= 1
                            touched.add(derived)
            if encode is None:
                born = {f for f in touched if self._counts[f] > 0 and f not in self._index}
                died = {f for f in touched if self._counts[f] <= 0 and f in self._index}
            else:
                born = {f for f in touched
                        if self._counts[encode(f)] > 0 and f not in self._index}
                died = {f for f in touched
                        if self._counts[encode(f)] <= 0 and f in self._index}
            dplus, dminus = FactIndex(), FactIndex()
            self._transition(born, died, dplus, dminus, added_net, removed_net)
        return added_net, removed_net

    def _transition(self, born, died, dplus, dminus, added_net, removed_net):
        """Apply presence transitions to the index, record them as the next
        round's delta, and fold them into the component's net change."""
        for fact in born:
            if self._index.add(fact):
                dplus.add(fact)
                if fact in removed_net:
                    removed_net.discard(fact)
                else:
                    added_net.add(fact)
        for fact in died:
            key = self._count_key(fact)
            if self._counts.get(key, 0) <= 0:
                self._counts.pop(key, None)
            if self._index.discard(fact):
                dminus.add(fact)
                if fact in added_net:
                    added_net.discard(fact)
                else:
                    removed_net.add(fact)

    def _maintain_dred(self, component, acc_plus, acc_minus, edb_plus, edb_minus):
        """Delete-and-rederive maintenance for a recursive component.

        1. *Overdelete*: remove every component fact with a derivation that
           touches removed support (deleted positive facts, inserted negated
           facts), cascading within the component.
        2. *Rederive*: restore overdeleted facts that are still EDB facts or
           have a derivation from the surviving database.
        3. *Insert*: propagate added support (inserted facts, deleted negated
           facts, rederived facts) semi-naively to a fixpoint.
        """
        added_net = set()
        removed_net = set()
        empty = FactIndex()

        # Phase 1 — overdeletion.
        overdeleted = set()
        seed_minus = FactIndex()
        for atom in edb_minus:
            if self._index.discard(atom):
                seed_minus.add(atom)
                overdeleted.add(atom)
        # acc_plus is only read during overdeletion — no copy needed.
        dplus, dminus = acc_plus, FactIndex(iter(acc_minus))
        dminus.absorb(seed_minus)
        while (dplus or dminus) and self._relevant(component, dplus, dminus):
            self.statistics.rounds += 1
            doomed = set()
            for rule in component.rules:
                for position, literal in enumerate(rule.body):
                    key = (literal.atom.predicate, len(literal.atom.args))
                    removed_support = dminus if literal.positive else dplus
                    if not removed_support.count(*key):
                        continue
                    self.statistics.delta_passes += 1
                    schedule = self._maintenance_schedule(rule, position)
                    for derived in self._pass_join(
                        rule, schedule, "decrement", dplus, dminus, {}, 0
                    ):
                        if derived in self._index:
                            doomed.add(derived)
            # Every doomed fact was checked present while the index was
            # round-stable, so the whole round delta subtracts bucket-wise.
            dplus, dminus = empty, FactIndex(doomed)
            self._index.retract_all(dminus)
            overdeleted |= doomed
        self.statistics.overdeleted += len(overdeleted)

        # Phase 2 — rederivation (one sweep; phase 3 propagates the rest).
        rederived = set()
        for fact in overdeleted:
            if fact in self._edb or self._derivable(component, fact):
                self._index.add(fact)
                rederived.add(fact)
        self.statistics.rederived += len(rederived)
        for fact in overdeleted - rederived:
            removed_net.add(fact)

        # Phase 3 — insertion (acc_minus is only read — no copy needed).
        dplus, dminus = FactIndex(iter(acc_plus)), acc_minus
        for atom in edb_plus:
            if self._index.add(atom):
                dplus.add(atom)
                added_net.add(atom)
        dplus.add_all(rederived)
        while (dplus or dminus) and self._relevant(component, dplus, dminus):
            self.statistics.rounds += 1
            fresh = set()
            for rule in component.rules:
                for position, literal in enumerate(rule.body):
                    key = (literal.atom.predicate, len(literal.atom.args))
                    added_support = dplus if literal.positive else dminus
                    if not added_support.count(*key):
                        continue
                    self.statistics.delta_passes += 1
                    schedule = self._maintenance_schedule(rule, position)
                    for derived in self._pass_join(
                        rule, schedule, "increment", dplus, dminus, {}, 0
                    ):
                        if derived not in self._index:
                            fresh.add(derived)
            # fresh is disjoint from the index by construction — merge the
            # whole round delta bucket-wise.
            dplus, dminus = FactIndex(fresh), empty
            self._index.absorb(dplus)
            for fact in fresh:
                if fact in removed_net:
                    removed_net.discard(fact)
                else:
                    added_net.add(fact)
        return added_net, removed_net

    def _derivable(self, component, fact):
        """True when some rule of the component derives *fact* from the
        current index (used by DRed rederivation): unify the head, then
        evaluate the body goal-directed against the index."""
        for rule in component.rules:
            if rule.head.predicate != fact.predicate or rule.head.arity != len(fact.args):
                continue
            binding = _match(rule.head.args, fact.args, {})
            if binding is None:
                continue
            schedule = self._maintenance_schedule(rule, None)
            for _ in self._pass_join(rule, schedule, "current", None, None, binding, 0):
                return True
        return False

    # -- maintenance joins ------------------------------------------------------
    def _maintenance_schedule(self, rule, delta_position):
        """Order a rule body for a maintenance pass.

        Returns ``(literal, role)`` pairs where the role is ``"delta"`` (the
        literal whose support changed — evaluated first, enumerating the
        delta), ``"before"`` (textually before the delta position: support
        must be *unchanged*, which is what makes each changed derivation
        count exactly once) or ``"after"`` (unrestricted).  Under the
        histogram planner the positive non-delta literals are greedily
        reordered by estimated selectivity against the current
        :class:`~repro.datalog.stats.JoinStatistics` snapshot (roles stay
        attached to their *textual* positions, so the enumerated derivation
        set is unchanged — only the join order); under the uniform planner
        they keep their textual order.  Negative non-delta literals are
        deferred until the prefix binds their variables, exactly as in the
        engine's scheduler.  Schedules are cached per
        ``(rule, delta_position)`` and invalidated with every histogram
        re-snapshot.
        """
        cached = self._schedules.get((rule, delta_position))
        if cached is not None:
            return cached
        stats = self._maintenance_stats

        def role_for(position):
            if delta_position is None or position == delta_position:
                return "after"
            return "before" if position < delta_position else "after"

        schedule = []
        bound = set()
        pending_negative = [
            (i, l) for i, l in enumerate(rule.body) if not l.positive and i != delta_position
        ]
        positives = [
            (i, l) for i, l in enumerate(rule.body) if l.positive and i != delta_position
        ]
        if delta_position is not None:
            literal = rule.body[delta_position]
            schedule.append((literal, "delta"))
            bound |= literal.variables()

        def emit_ready_negatives():
            for entry in list(pending_negative):
                position, literal = entry
                if literal.variables() <= bound:
                    schedule.append((literal, role_for(position)))
                    pending_negative.remove(entry)

        emit_ready_negatives()
        while positives:
            choice = 0
            if stats is not None:
                best_score = None
                for slot, (_, literal) in enumerate(positives):
                    atom = literal.atom
                    bound_positions = [
                        p
                        for p, arg in enumerate(atom.args)
                        if isinstance(arg, Parameter) or arg in bound
                    ]
                    estimate = stats.selectivity(
                        atom.predicate, len(atom.args), bound_positions
                    )
                    score = (0 if bound_positions else 1, estimate)
                    if best_score is None or score < best_score:
                        best_score, choice = score, slot
            position, literal = positives.pop(choice)
            schedule.append((literal, role_for(position)))
            bound |= literal.variables()
            emit_ready_negatives()
        self._schedules[(rule, delta_position)] = schedule
        return schedule

    def _pass_join(self, rule, schedule, mode, dplus, dminus, binding, position):
        """Evaluate a maintenance schedule, yielding one head atom per
        derivation whose status changed.

        ``mode="increment"`` evaluates in the new database (the index),
        ``mode="decrement"`` in the old one (the index with the round delta
        undone), ``mode="current"`` in the index with no delta at all (DRed
        rederivation).  The role tags implement the first-changed-position
        discipline documented on :meth:`_maintenance_schedule`.
        """
        if position == len(schedule):
            yield _head_atom(rule, binding)
            return
        literal, role = schedule[position]
        atom = literal.atom
        arity = len(atom.args)
        if literal.positive or role == "delta":
            bound_arguments = []
            for argument_position, arg in enumerate(atom.args):
                if isinstance(arg, Parameter):
                    bound_arguments.append((argument_position, arg))
                else:
                    value = binding.get(arg)
                    if value is not None:
                        bound_arguments.append((argument_position, value))
            for fact in self._pass_candidates(
                atom.predicate, arity, bound_arguments, literal.positive, role, mode,
                dplus, dminus,
            ):
                extended = _match(atom.args, fact.args, binding)
                if extended is not None:
                    yield from self._pass_join(
                        rule, schedule, mode, dplus, dminus, extended, position + 1
                    )
        else:
            candidate = _ground_negative(literal, binding)
            if self._negative_holds(candidate, role, mode, dplus, dminus):
                yield from self._pass_join(
                    rule, schedule, mode, dplus, dminus, binding, position + 1
                )

    def _pass_candidates(self, predicate, arity, bound, positive, role, mode, dplus, dminus):
        """Enumerate the facts a maintenance join step may match.

        The evaluation database is the index for increment passes and the
        index with the round delta undone (minus ``dplus``, plus ``dminus``)
        for decrement passes; ``"before"`` roles additionally exclude the
        literal's own changed support.  A *negated* delta literal enumerates
        the opposite delta: its support was added by a deletion and removed
        by an insertion.
        """
        if role == "delta":
            if positive:
                source = dplus if mode == "increment" else dminus
            else:
                source = dminus if mode == "increment" else dplus
            yield from source.candidates(predicate, arity, bound)
            return
        if mode == "current":
            yield from self._index.candidates(predicate, arity, bound)
            return
        if mode == "increment":
            if role == "before" and dplus.count(predicate, arity):
                for fact in self._index.candidates(predicate, arity, bound):
                    if fact not in dplus:
                        yield fact
            else:
                yield from self._index.candidates(predicate, arity, bound)
            return
        # decrement: old database = (index - dplus) + dminus
        if dplus.count(predicate, arity):
            for fact in self._index.candidates(predicate, arity, bound):
                if fact not in dplus:
                    yield fact
        else:
            yield from self._index.candidates(predicate, arity, bound)
        if role == "after":
            yield from dminus.candidates(predicate, arity, bound)

    def _negative_holds(self, candidate, role, mode, dplus, dminus):
        """Was/is the negated literal satisfied in the pass's evaluation
        database (with unchanged support when the role demands it)?"""
        if mode == "current":
            return candidate not in self._index
        if mode == "increment":
            if role == "before":
                return candidate not in self._index and candidate not in dminus
            return candidate not in self._index
        # decrement: satisfied in the old database ...
        in_old = (candidate not in self._index or candidate in dplus) and (
            candidate not in dminus
        )
        if role == "before":
            # ... with unchanged support (not inserted this round either).
            return in_old and candidate not in dplus
        return in_old
