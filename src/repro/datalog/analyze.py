"""Static program analysis for Datalog: diagnostics plus optimization.

The engine family (indexed / incremental / magic / parallel / columnar)
evaluates whatever program it is handed; this module is the pass that looks
at the *program as an object* first — Reiter's KB-as-first-class-artifact
view applied to the Datalog substrate.  :func:`analyze_program` runs a
battery of static checks over a :class:`~repro.datalog.program.DatalogProgram`
and returns a :class:`ProgramAnalysis` holding structured
:class:`Diagnostic` objects plus the byproduct analyses the engine itself
consumes:

* **safety / range restriction** (``DL001``, ``DL002``) — per-variable: the
  unbound head variable, or the unbound variable together with the negated
  literal that needs it;
* **arity conflicts** (``DL003``) — one predicate name used at two arities
  across rules and facts;
* **constant-kind conflicts** (``DL004``) — a column whose constants mix
  lexical kinds (``int`` vs ``symbol``, see
  :func:`~repro.datalog.interner.constant_kind`);
* **non-stratifiable negation** (``DL005``) — reported as the actual
  negative cycle, a predicate path like ``p/1 -not-> q/1 -> p/1``, not a
  bare "unstratifiable";
* **unbound variables under negation** (``DL002``);
* **duplicate rules** (``DL006``) and **subsumed rules** (``DL007``,
  classical θ-subsumption, capped at :data:`SUBSUMPTION_LIMIT` rules);
* **dead rules and predicates** (``DL008``, ``DL009``) — rules that can
  never fire because some positive body predicate is provably empty, and
  (when an output set is declared via
  :meth:`~repro.datalog.program.DatalogProgram.declare_output` or passed
  explicitly) rules and predicates unreachable from the outputs;
* **unknown outputs** (``DL010``) — a declared output predicate the program
  never defines.

Byproducts shared with the engine: the predicate dependency condensation
(:func:`condensation_of`, also the substrate of
``DatalogEngine._condensation`` and the parallel scheduler's waves),
per-predicate :class:`PredicateSignature` objects (inferred arity plus
per-column constant kinds, pre-validating the columnar/interner layout),
and the never-fire rule set that
:meth:`ProgramAnalysis.pruned_program` strips — the dead-rule pruner the
engine applies before magic rewriting and shard scheduling.  Pruning is
*semantics-preserving*: only rules whose positive body mentions a provably
empty predicate are removed, so the least model is unchanged by
construction (output-unreachability is diagnosed but never pruned).

The module is also a linter: ``python -m repro.datalog.analyze`` checks a
Datalog source file (classic syntax — capitalized variables, ``not`` for
negation, ``%`` comments, ``.output p/2`` directives) or a generated
workload by name, and prints diagnostics with locations.
"""

import re
from collections import defaultdict
from dataclasses import dataclass, field

from repro.datalog.interner import constant_kind
from repro.datalog.program import (
    DatalogFact,
    DatalogLiteral,
    DatalogProgram,
    DatalogRule,
)
from repro.exceptions import ParseError, ProgramAnalysisError
from repro.logic.syntax import Atom
from repro.logic.terms import Parameter, Variable

#: Severities, most severe first.  ``check="strict"`` rejects a program on
#: any diagnostic that is not ``"info"``; ``check="warn"`` surfaces only
#: ``"error"`` findings through :mod:`warnings`.
SEVERITIES = ("error", "warning", "info")

UNSAFE_HEAD_VARIABLE = "DL001"
UNBOUND_UNDER_NEGATION = "DL002"
ARITY_CONFLICT = "DL003"
KIND_CONFLICT = "DL004"
NEGATIVE_CYCLE = "DL005"
DUPLICATE_RULE = "DL006"
SUBSUMED_RULE = "DL007"
DEAD_RULE = "DL008"
DEAD_PREDICATE = "DL009"
UNKNOWN_OUTPUT = "DL010"

#: code -> (severity, one-line description); the single source of the
#: diagnostic table in ``docs/analysis.md`` and of ``--codes``.
CODES = {
    UNSAFE_HEAD_VARIABLE: (
        "error", "head variable not bound by any positive body literal"),
    UNBOUND_UNDER_NEGATION: (
        "error", "variable under negation not bound by any positive body literal"),
    ARITY_CONFLICT: (
        "error", "one predicate name used with conflicting arities"),
    KIND_CONFLICT: (
        "warning", "a column mixes int-like and symbolic constants"),
    NEGATIVE_CYCLE: (
        "error", "negation inside a recursive component (not stratifiable)"),
    DUPLICATE_RULE: (
        "warning", "rule duplicates an earlier rule up to variable renaming"),
    SUBSUMED_RULE: (
        "warning", "rule is subsumed by a more general rule"),
    DEAD_RULE: (
        "warning", "rule can never fire, or feeds no declared output"),
    DEAD_PREDICATE: (
        "warning", "predicate can never hold, or feeds no declared output"),
    UNKNOWN_OUTPUT: (
        "warning", "declared output predicate is never defined"),
}

#: θ-subsumption is pairwise (O(n²) match attempts); programs beyond this
#: many rules skip the DL007 check (all other checks still run).
SUBSUMPTION_LIMIT = 400


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``code`` is a stable identifier from :data:`CODES`; ``severity`` is one
    of :data:`SEVERITIES`.  Location is carried as the rendered ``rule``
    text plus its ``rule_index`` in ``program.rules`` (``None`` for
    program-level findings), the ``predicate`` concerned (``"name/arity"``),
    the offending ``variable`` name when the finding is per-variable, and
    the source ``line`` when the program came from a parsed file.
    ``suggestion`` is the human fix-it hint.
    """

    code: str
    severity: str
    message: str
    rule: str = None
    rule_index: int = None
    predicate: str = None
    variable: str = None
    line: int = None
    suggestion: str = None

    def location(self):
        """A short human-readable location: the source line when known,
        otherwise the rule index, otherwise the predicate."""
        if self.line is not None:
            return f"line {self.line}"
        if self.rule_index is not None:
            return f"rule #{self.rule_index}"
        if self.predicate is not None:
            return self.predicate
        return "program"

    def __str__(self):
        rendered = f"{self.location()}: {self.severity}[{self.code}] {self.message}"
        if self.suggestion:
            rendered += f" (hint: {self.suggestion})"
        return rendered


@dataclass(frozen=True)
class PredicateSignature:
    """The inferred signature of one ``name/arity`` predicate: per-column
    sets of constant kinds (``"int"`` / ``"symbol"``, from
    :func:`~repro.datalog.interner.constant_kind`; a column no constant ever
    touches has an empty set) plus how many EDB facts and rule heads define
    it.  This is what pre-validates the columnar/interner layout: every
    fact row must have exactly ``arity`` ids and each column is expected to
    stay kind-homogeneous."""

    name: str
    arity: int
    column_kinds: tuple
    facts: int = 0
    rule_heads: int = 0

    @property
    def key(self):
        """The ``(name, arity)`` relation key the signature describes."""
        return (self.name, self.arity)

    def __str__(self):
        columns = ", ".join(
            "|".join(sorted(kinds)) if kinds else "?" for kinds in self.column_kinds
        )
        return f"{self.name}({columns})"


def _predicate_str(key):
    return f"{key[0]}/{key[1]}"


def rule_text(rule):
    """The rendered rule — the one textual format shared by the static
    diagnostics and the runtime :class:`~repro.exceptions.UnsafeRuleError`."""
    return str(rule)


def unchecked_rule(head, body=()):
    """Construct a :class:`~repro.datalog.program.DatalogRule` *without* the
    constructor's safety validation.

    The normal constructor raises
    :class:`~repro.exceptions.UnsafeRuleError` on unsafe rules, which is
    right for programs headed into an engine but wrong for a linter that
    must *hold* the broken rule to report it.  The parser and the seeded
    defect tests use this to materialize rules the analyzer then diagnoses.
    """
    rule = object.__new__(DatalogRule)
    object.__setattr__(rule, "head", head)
    object.__setattr__(rule, "body", tuple(body))
    return rule


# -- safety (range restriction) ---------------------------------------------
def rule_safety(rule, rule_index=None, line=None):
    """The safety diagnostics of one rule: a tuple of :class:`Diagnostic`
    objects, one per unbound variable — ``DL001`` for head variables not
    bound by any positive body literal, ``DL002`` for variables of negated
    literals not bound by any positive literal (naming the negated literal
    that needs them).  Empty exactly when the rule is range-restricted.

    This is the single safety checker:
    :meth:`DatalogRule._check_safety
    <repro.datalog.program.DatalogRule>` raises
    :class:`~repro.exceptions.UnsafeRuleError` from these diagnostics, so
    runtime rejection and static linting share one message format.
    """
    text = rule_text(rule)
    positive_variables = set()
    for literal in rule.body:
        if literal.positive:
            positive_variables |= literal.variables()
    diagnostics = []
    head_variables = {a for a in rule.head.args if isinstance(a, Variable)}
    for variable in sorted(head_variables - positive_variables, key=lambda v: v.name):
        diagnostics.append(Diagnostic(
            code=UNSAFE_HEAD_VARIABLE,
            severity=CODES[UNSAFE_HEAD_VARIABLE][0],
            message=(
                f"unsafe rule {text}: head variable '{variable.name}' does not "
                "occur in any positive body literal"
            ),
            rule=text,
            rule_index=rule_index,
            predicate=_predicate_str((rule.head.predicate, len(rule.head.args))),
            variable=variable.name,
            line=line,
            suggestion=(
                f"add a positive body literal that binds '{variable.name}', "
                "or drop it from the head"
            ),
        ))
    for literal in rule.body:
        if literal.positive:
            continue
        loose = literal.variables() - positive_variables
        for variable in sorted(loose, key=lambda v: v.name):
            diagnostics.append(Diagnostic(
                code=UNBOUND_UNDER_NEGATION,
                severity=CODES[UNBOUND_UNDER_NEGATION][0],
                message=(
                    f"unsafe rule {text}: variable '{variable.name}' of negated "
                    f"literal {literal} is not bound by any positive body literal"
                ),
                rule=text,
                rule_index=rule_index,
                predicate=_predicate_str((rule.head.predicate, len(rule.head.args))),
                variable=variable.name,
                line=line,
                suggestion=(
                    f"bind '{variable.name}' with a positive literal before "
                    f"negating {literal.atom.predicate}"
                ),
            ))
    return tuple(diagnostics)


# -- dependency graph / condensation ----------------------------------------
def dependency_graph(rules):
    """The predicate dependency graph of a rule set, restricted to the
    intensional predicates: ``(idb, positive_edges, negative_edges)`` where
    each edge map sends a head ``(name, arity)`` to the set of IDB body
    predicates it depends on with that sign."""
    idb = {(rule.head.predicate, rule.head.arity) for rule in rules}
    positive_edges = defaultdict(set)
    negative_edges = defaultdict(set)
    for rule in rules:
        head_key = (rule.head.predicate, rule.head.arity)
        for literal in rule.body:
            body_key = (literal.atom.predicate, literal.atom.arity)
            if body_key not in idb:
                continue
            if literal.positive:
                positive_edges[head_key].add(body_key)
            else:
                negative_edges[head_key].add(body_key)
    return idb, positive_edges, negative_edges


def strongly_connected_components(nodes, successors):
    """Tarjan's strongly connected components, iteratively (no recursion
    limit), emitted **dependencies-first**: every successor of a component
    member lies in the same or an earlier component.  Returns ``(components,
    component_of)`` — the ordered list of frozen member sets and the node ->
    component-position map.

    This is the one SCC routine of the Datalog layer: the engine's
    stratifier, the parallel scheduler's wave grouping and the incremental
    maintainer all condense with it.
    """
    preorder = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []
    component_of = {}
    counter = 0
    for root in nodes:
        if root in preorder:
            continue
        work = [(root, iter(successors.get(root, ())))]
        while work:
            node, iterator = work[-1]
            if node not in preorder:
                preorder[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for successor in iterator:
                if successor not in preorder:
                    work.append((successor, iter(successors.get(successor, ()))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], preorder[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == preorder[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.remove(member)
                    component.add(member)
                    component_of[member] = len(components)
                    if member == node:
                        break
                components.append(component)
    return components, component_of


def condensation_of(rules):
    """The dependency condensation of a rule set: ``(components,
    component_of, positive_edges, negative_edges)``, components emitted
    dependencies-first.  Unlike ``DatalogEngine._condensation`` (which is
    built on this and *raises* on non-stratifiable programs) this never
    raises — the analyzer reports negative in-component edges as ``DL005``
    diagnostics instead."""
    idb, positive_edges, negative_edges = dependency_graph(rules)
    if not idb:
        return [], {}, positive_edges, negative_edges
    successors = {p: positive_edges[p] | negative_edges[p] for p in idb}
    components, component_of = strongly_connected_components(idb, successors)
    return components, component_of, positive_edges, negative_edges


def negative_cycle(head, dependency, component, positive_edges, negative_edges):
    """The actual cycle witnessing a negative edge inside a recursive
    component: the edge ``head -not-> dependency`` followed by a shortest
    path from *dependency* back to *head* inside *component*.  Returns a
    list of ``(source, sign, target)`` triples where ``sign`` is ``"not"``
    or ``""``."""
    parents = {dependency: None}
    if head != dependency:
        frontier = [dependency]
        while frontier and head not in parents:
            next_frontier = []
            for node in frontier:
                for sign, edges in (("", positive_edges), ("not", negative_edges)):
                    for successor in sorted(edges.get(node, ())):
                        if successor in component and successor not in parents:
                            parents[successor] = (node, sign)
                            next_frontier.append(successor)
            frontier = next_frontier
    path = []
    node = head
    while parents.get(node) is not None:
        previous, sign = parents[node]
        path.append((previous, sign, node))
        node = previous
    return [(head, "not", dependency)] + list(reversed(path))


def format_cycle(edges):
    """Render a :func:`negative_cycle` as a predicate path, e.g.
    ``p/1 -not-> q/1 -> p/1``."""
    parts = [_predicate_str(edges[0][0])]
    for _, sign, target in edges:
        parts.append("-not->" if sign else "->")
        parts.append(_predicate_str(target))
    return " ".join(parts)


# -- θ-subsumption -----------------------------------------------------------
def _match_atom(pattern, target, binding):
    """Extend *binding* (variables of *pattern* -> terms of *target*) so
    that the substituted pattern equals *target*; ``None`` when impossible."""
    if pattern.predicate != target.predicate or len(pattern.args) != len(target.args):
        return None
    binding = dict(binding)
    for source, destination in zip(pattern.args, target.args):
        if isinstance(source, Variable):
            seen = binding.get(source)
            if seen is None:
                binding[source] = destination
            elif seen != destination:
                return None
        elif source != destination:
            return None
    return binding


def subsumes(general, specific):
    """Classical θ-subsumption: True when a substitution θ over *general*'s
    variables makes ``θ(general.head) == specific.head`` and maps every
    body literal of *general* onto some body literal of *specific* (sign-
    preserving).  Whenever it holds, every fact the specific rule derives,
    the general one derives too — the specific rule is redundant."""
    binding = _match_atom(general.head, specific.head, {})
    if binding is None:
        return False
    body = general.body

    def backtrack(position, binding):
        if position == len(body):
            return True
        literal = body[position]
        for candidate in specific.body:
            if candidate.positive != literal.positive:
                continue
            extended = _match_atom(literal.atom, candidate.atom, binding)
            if extended is not None and backtrack(position + 1, extended):
                return True
        return False

    return backtrack(0, binding)


def _canonical_rule(rule):
    """The rule with variables renamed by first occurrence — duplicate
    detection up to alphabetic variance."""
    renaming = {}

    def term_key(term):
        if isinstance(term, Variable):
            if term not in renaming:
                renaming[term] = f"_v{len(renaming)}"
            return ("v", renaming[term])
        return ("c", term.name)

    def atom_key(atom):
        return (atom.predicate, tuple(term_key(a) for a in atom.args))

    return (
        atom_key(rule.head),
        tuple((literal.positive, atom_key(literal.atom)) for literal in rule.body),
    )


# -- the analysis ------------------------------------------------------------
@dataclass
class ProgramAnalysis:
    """The result of :func:`analyze_program`: the diagnostics plus the
    byproduct analyses the engine consumes (condensation, signatures, the
    never-fire rule set behind :meth:`pruned_program`)."""

    program: object
    diagnostics: tuple
    signatures: dict
    components: list
    component_of: dict
    positive_edges: dict
    negative_edges: dict
    outputs: frozenset
    never_fire: frozenset
    dead_rules: frozenset
    dead_predicates: frozenset
    _pruned: object = field(default=None, repr=False)

    def errors(self):
        """The error-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def warnings(self):
        """The warning-severity diagnostics."""
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def by_code(self, code):
        """The diagnostics with the given code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    @property
    def ok(self):
        """True when the analysis found no errors (warnings allowed)."""
        return not self.errors()

    def strict_violations(self):
        """The diagnostics that reject the program under ``check="strict"``
        — everything that is not informational."""
        return tuple(d for d in self.diagnostics if d.severity != "info")

    def signature_of(self, name, arity):
        """The :class:`PredicateSignature` of ``name/arity`` (``None`` when
        the program never mentions it)."""
        return self.signatures.get((name, arity))

    def pruned_program(self):
        """The program with its never-fire rules removed (the original
        object, unchanged, when there are none).

        Only *never-fire* rules — rules with a positive body literal whose
        predicate is provably empty (no facts, no live rules) — are pruned,
        so the least model is identical by construction; output-
        unreachability is diagnosed (``DL008``/``DL009``) but never pruned.
        The pruned program shares the original's fact list, so later EDB
        growth stays visible through it.
        """
        if not self.never_fire:
            return self.program
        if self._pruned is None:
            pruned = DatalogProgram.__new__(DatalogProgram)
            pruned.facts = self.program.facts
            pruned.rules = [
                rule for index, rule in enumerate(self.program.rules)
                if index not in self.never_fire
            ]
            pruned.outputs = set(self.outputs)
            self._pruned = pruned
        return self._pruned

    def validate_columns(self, interner=None):
        """Pre-validate the columnar layout against the inferred signatures:
        every fact row must have exactly its predicate's arity (columns are
        fixed-width id arrays) — raises
        :class:`~repro.exceptions.ProgramAnalysisError` citing the ``DL003``
        diagnostics when one predicate name would need two widths.  Called
        by the engine's columnar path before facts are interned, so a
        conflicted program is rejected with the analyzer's explanation
        instead of corrupting or silently forking the relation."""
        conflicts = self.by_code(ARITY_CONFLICT)
        if conflicts:
            raise ProgramAnalysisError(
                "columnar storage needs one arity per predicate: "
                + "; ".join(d.message for d in conflicts),
                diagnostics=conflicts,
            )
        return self.signatures

    def report(self):
        """A human-readable multi-line report of every diagnostic (empty
        string when the program is clean)."""
        return "\n".join(str(d) for d in self.diagnostics)


def analyze_program(program, outputs=None, rule_lines=None):
    """Statically analyze *program* and return a :class:`ProgramAnalysis`.

    *outputs* optionally declares the output predicates (an iterable of
    ``(name, arity)`` pairs or ``"name/arity"`` strings) on top of any
    recorded on the program itself
    (:meth:`~repro.datalog.program.DatalogProgram.declare_output`); when an
    output set is declared, rules and predicates that cannot reach it are
    reported as dead (with the default — no declaration — the output set is
    inferred as every consumerless component, under which nothing is
    unreachable).  *rule_lines* optionally maps rule indexes to source
    lines (the CLI parser provides it) for line-precise diagnostics.
    """
    rules = list(program.rules)
    facts = list(program.facts)
    rule_lines = rule_lines or {}
    diagnostics = []

    # 1. Safety (range restriction), per rule, per variable.
    unsafe_indexes = set()
    for index, rule in enumerate(rules):
        found = rule_safety(rule, rule_index=index, line=rule_lines.get(index))
        if found:
            unsafe_indexes.add(index)
            diagnostics.extend(found)

    # 2. Arity conflicts: one predicate name, two arities.
    occurrences = defaultdict(dict)  # name -> arity -> first occurrence text
    for fact in facts:
        occurrences[fact.atom.predicate].setdefault(
            len(fact.atom.args), f"fact {fact}"
        )
    for index, rule in enumerate(rules):
        occurrences[rule.head.predicate].setdefault(
            rule.head.arity, f"rule #{index} head {rule_text(rule)}"
        )
        for literal in rule.body:
            occurrences[literal.atom.predicate].setdefault(
                literal.atom.arity, f"rule #{index} body {rule_text(rule)}"
            )
    for name in sorted(occurrences):
        arities = occurrences[name]
        if len(arities) > 1:
            witnesses = "; ".join(
                f"arity {arity} in {where}" for arity, where in sorted(arities.items())
            )
            diagnostics.append(Diagnostic(
                code=ARITY_CONFLICT,
                severity=CODES[ARITY_CONFLICT][0],
                message=f"predicate '{name}' is used with conflicting arities: {witnesses}",
                predicate=f"{name}/{'|'.join(str(a) for a in sorted(arities))}",
                suggestion="rename one of the uses — relations are keyed by name and arity",
            ))

    # 3. Signatures + constant-kind conflicts, per (name, arity) column.
    column_kinds = defaultdict(lambda: None)
    fact_counts = defaultdict(int)
    head_counts = defaultdict(int)
    kind_witness = {}

    def observe(key, position, parameter, where):
        kinds = column_kinds[key]
        if kinds is None:
            kinds = column_kinds[key] = [set() for _ in range(key[1])]
        kind = constant_kind(parameter)
        kinds[position].add(kind)
        kind_witness.setdefault((key, position, kind), where)

    for fact in facts:
        key = (fact.atom.predicate, len(fact.atom.args))
        fact_counts[key] += 1
        for position, argument in enumerate(fact.atom.args):
            observe(key, position, argument, f"fact {fact}")
    for index, rule in enumerate(rules):
        head_counts[(rule.head.predicate, rule.head.arity)] += 1
        for atom in [rule.head] + [literal.atom for literal in rule.body]:
            key = (atom.predicate, len(atom.args))
            for position, argument in enumerate(atom.args):
                if isinstance(argument, Parameter):
                    observe(key, position, argument, f"rule #{index} {rule_text(rule)}")

    signatures = {}
    all_keys = set(column_kinds) | set(fact_counts) | set(head_counts)
    for key in all_keys:
        kinds = column_kinds.get(key) or [set() for _ in range(key[1])]
        signatures[key] = PredicateSignature(
            name=key[0], arity=key[1],
            column_kinds=tuple(frozenset(k) for k in kinds),
            facts=fact_counts.get(key, 0),
            rule_heads=head_counts.get(key, 0),
        )
    for key in sorted(all_keys):
        signature = signatures[key]
        for position, kinds in enumerate(signature.column_kinds):
            if len(kinds) > 1:
                witnesses = "; ".join(
                    f"{kind} in {kind_witness[(key, position, kind)]}"
                    for kind in sorted(kinds)
                )
                diagnostics.append(Diagnostic(
                    code=KIND_CONFLICT,
                    severity=CODES[KIND_CONFLICT][0],
                    message=(
                        f"column {position} of {_predicate_str(key)} mixes "
                        f"constant kinds: {witnesses}"
                    ),
                    predicate=_predicate_str(key),
                    suggestion="pick one encoding for the column's domain",
                ))

    # 4. Stratifiability: negative edges inside a condensation component,
    # reported as the actual cycle.
    components, component_of, positive_edges, negative_edges = condensation_of(rules)
    for head in sorted(negative_edges):
        for dependency in sorted(negative_edges[head]):
            if component_of[head] == component_of[dependency]:
                cycle = negative_cycle(
                    head, dependency,
                    components[component_of[head]],
                    positive_edges, negative_edges,
                )
                diagnostics.append(Diagnostic(
                    code=NEGATIVE_CYCLE,
                    severity=CODES[NEGATIVE_CYCLE][0],
                    message=(
                        f"negation inside a recursive component: {format_cycle(cycle)}"
                        " — the program is not stratifiable"
                    ),
                    predicate=_predicate_str(head),
                    suggestion="break the cycle or make the negated predicate non-recursive",
                ))

    # 5. Duplicate rules (up to variable renaming).
    canonical = {}
    duplicate_pairs = set()
    for index, rule in enumerate(rules):
        if index in unsafe_indexes:
            continue
        key = _canonical_rule(rule)
        first = canonical.setdefault(key, index)
        if first != index:
            duplicate_pairs.add((first, index))
            diagnostics.append(Diagnostic(
                code=DUPLICATE_RULE,
                severity=CODES[DUPLICATE_RULE][0],
                message=(
                    f"rule #{index} {rule_text(rule)} duplicates rule #{first} "
                    f"{rule_text(rules[first])} up to variable renaming"
                ),
                rule=rule_text(rule),
                rule_index=index,
                predicate=_predicate_str((rule.head.predicate, rule.head.arity)),
                line=rule_lines.get(index),
                suggestion="remove the duplicate",
            ))

    # 6. Subsumed rules (θ-subsumption; duplicates already reported above).
    if len(rules) <= SUBSUMPTION_LIMIT:
        by_head = defaultdict(list)
        for index, rule in enumerate(rules):
            if index not in unsafe_indexes:
                by_head[(rule.head.predicate, rule.head.arity)].append(index)
        for indexes in by_head.values():
            for slot, i in enumerate(indexes):
                for j in indexes[slot + 1:]:
                    if (i, j) in duplicate_pairs:
                        continue
                    forward = subsumes(rules[i], rules[j])
                    backward = subsumes(rules[j], rules[i])
                    if forward and backward:
                        # Mutually subsuming non-duplicates (e.g. a repeated
                        # literal): the longer body is the redundant one.
                        redundant, keeper = (
                            (i, j) if len(rules[i].body) > len(rules[j].body) else (j, i)
                        )
                    elif forward:
                        redundant, keeper = j, i
                    elif backward:
                        redundant, keeper = i, j
                    else:
                        continue
                    diagnostics.append(Diagnostic(
                        code=SUBSUMED_RULE,
                        severity=CODES[SUBSUMED_RULE][0],
                        message=(
                            f"rule #{redundant} {rule_text(rules[redundant])} is "
                            f"subsumed by rule #{keeper} {rule_text(rules[keeper])}: "
                            "every fact it derives, the more general rule derives too"
                        ),
                        rule=rule_text(rules[redundant]),
                        rule_index=redundant,
                        predicate=_predicate_str(
                            (rules[redundant].head.predicate, rules[redundant].head.arity)
                        ),
                        line=rule_lines.get(redundant),
                        suggestion="remove the subsumed rule",
                    ))

    # 7. Never-fire rules: least fixpoint of "possibly non-empty".
    nonempty = {key for key, count in fact_counts.items() if count}
    live = set()
    changed = True
    while changed:
        changed = False
        for index, rule in enumerate(rules):
            if index in live:
                continue
            if all(
                (literal.atom.predicate, literal.atom.arity) in nonempty
                for literal in rule.body if literal.positive
            ):
                live.add(index)
                nonempty.add((rule.head.predicate, rule.head.arity))
                changed = True
    never_fire = frozenset(range(len(rules))) - live
    for index in sorted(never_fire):
        rule = rules[index]
        empty = next(
            literal for literal in rule.body
            if literal.positive
            and (literal.atom.predicate, literal.atom.arity) not in nonempty
        )
        empty_key = (empty.atom.predicate, empty.atom.arity)
        diagnostics.append(Diagnostic(
            code=DEAD_RULE,
            severity=CODES[DEAD_RULE][0],
            message=(
                f"rule #{index} {rule_text(rule)} can never fire: "
                f"{_predicate_str(empty_key)} has no facts and no rule that "
                "could ever derive it"
            ),
            rule=rule_text(rule),
            rule_index=index,
            predicate=_predicate_str((rule.head.predicate, rule.head.arity)),
            line=rule_lines.get(index),
            suggestion=(
                f"remove the rule or provide {_predicate_str(empty_key)} facts"
            ),
        ))
    idb = {(rule.head.predicate, rule.head.arity) for rule in rules}
    dead_predicates = {
        key for key in idb
        if key not in nonempty and not fact_counts.get(key)
    }
    for key in sorted(dead_predicates):
        diagnostics.append(Diagnostic(
            code=DEAD_PREDICATE,
            severity=CODES[DEAD_PREDICATE][0],
            message=(
                f"predicate {_predicate_str(key)} can never hold: every rule "
                "defining it is dead and it has no facts"
            ),
            predicate=_predicate_str(key),
            suggestion="remove its rules or feed the predicates they read",
        ))

    # 8. Output reachability.  With no declaration the output set is
    # inferred as the consumerless components — under which every predicate
    # reaches an output, so nothing is flagged; a declaration narrows it.
    declared = set()
    for source in (getattr(program, "outputs", ()), outputs or ()):
        for item in source:
            if isinstance(item, str):
                name, _, arity = item.partition("/")
                declared.add((name, int(arity)))
            else:
                declared.add((item[0], int(item[1])))
    known = {key for key in all_keys}
    for key in sorted(declared - known):
        diagnostics.append(Diagnostic(
            code=UNKNOWN_OUTPUT,
            severity=CODES[UNKNOWN_OUTPUT][0],
            message=(
                f"declared output {_predicate_str(key)} is never defined by "
                "any rule or fact"
            ),
            predicate=_predicate_str(key),
            suggestion="drop the declaration or define the predicate",
        ))
    dead_rule_indexes = set(never_fire)
    if declared:
        body_reads = defaultdict(set)  # head key -> body keys (any sign)
        for rule in rules:
            head_key = (rule.head.predicate, rule.head.arity)
            for literal in rule.body:
                body_reads[head_key].add((literal.atom.predicate, literal.atom.arity))
        reachable = set(declared & known)
        frontier = list(reachable)
        while frontier:
            key = frontier.pop()
            for read in body_reads.get(key, ()):
                if read not in reachable:
                    reachable.add(read)
                    frontier.append(read)
        for index, rule in enumerate(rules):
            head_key = (rule.head.predicate, rule.head.arity)
            if head_key in reachable or index in dead_rule_indexes:
                continue
            dead_rule_indexes.add(index)
            diagnostics.append(Diagnostic(
                code=DEAD_RULE,
                severity=CODES[DEAD_RULE][0],
                message=(
                    f"rule #{index} {rule_text(rule)} does not contribute to "
                    "any declared output"
                ),
                rule=rule_text(rule),
                rule_index=index,
                predicate=_predicate_str(head_key),
                line=rule_lines.get(index),
                suggestion="remove the rule or declare its head an output",
            ))
        for key in sorted(idb - reachable - dead_predicates):
            diagnostics.append(Diagnostic(
                code=DEAD_PREDICATE,
                severity=CODES[DEAD_PREDICATE][0],
                message=(
                    f"predicate {_predicate_str(key)} is unreachable from the "
                    "declared output set"
                ),
                predicate=_predicate_str(key),
                suggestion="remove its rules or declare it an output",
            ))

    severity_rank = {severity: rank for rank, severity in enumerate(SEVERITIES)}
    diagnostics.sort(key=lambda d: (
        severity_rank[d.severity], d.code,
        d.rule_index if d.rule_index is not None else -1,
        d.predicate or "", d.variable or "",
    ))
    return ProgramAnalysis(
        program=program,
        diagnostics=tuple(diagnostics),
        signatures=signatures,
        components=components,
        component_of=component_of,
        positive_edges=positive_edges,
        negative_edges=negative_edges,
        outputs=frozenset(declared),
        never_fire=never_fire,
        dead_rules=frozenset(dead_rule_indexes),
        dead_predicates=frozenset(dead_predicates),
    )


# -- the textual format ------------------------------------------------------
_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(([^()]*)\))?\s*$")
_LITERAL_SPLIT_RE = re.compile(r",(?![^()]*\))")


def _parse_term(text, line):
    text = text.strip()
    if not re.fullmatch(r"[A-Za-z0-9_]+", text or ""):
        raise ParseError(f"line {line}: cannot read term {text!r}", text=text)
    if text[0].isupper() or text[0] == "_":
        return Variable(text)
    return Parameter(text)


def _parse_atom(text, line):
    match = _ATOM_RE.match(text)
    if match is None:
        raise ParseError(f"line {line}: cannot read atom {text!r}", text=text)
    name, arguments = match.group(1), match.group(2)
    if arguments is None or not arguments.strip():
        return Atom(name, ())
    return Atom(name, tuple(_parse_term(a, line) for a in arguments.split(",")))


def _parse_literal(text, line):
    text = text.strip()
    positive = True
    if text.startswith("not ") or text.startswith("not\t"):
        positive = False
        text = text[4:]
    elif text.startswith("!"):
        positive = False
        text = text[1:]
    return DatalogLiteral(_parse_atom(text, line), positive)


def parse_program(text):
    """Parse classic Datalog text into ``(program, rule_lines)``.

    Syntax: statements end with ``.``; ``head :- lit, lit, not lit.`` for
    rules and ``p(a, b).`` for facts; capitalized (or ``_``-leading)
    identifiers are variables, everything else (including integers) is a
    constant; ``%`` starts a comment; ``.output name/arity`` declares an
    output predicate (recorded on the program for the reachability checks).
    Unsafe rules and non-ground facts are *accepted* — they land in the
    program unvalidated (via :func:`unchecked_rule`) so that
    :func:`analyze_program` can report them instead of the parser throwing.
    ``rule_lines`` maps each rule's index to its source line.
    """
    program = DatalogProgram()
    rule_lines = {}
    buffer = ""
    start_line = None
    for line_number, raw in enumerate(text.splitlines(), 1):
        stripped = raw.split("%", 1)[0].strip()
        if not stripped:
            continue
        if not buffer and stripped.startswith(".output"):
            rest = stripped[len(".output"):].strip().rstrip(".")
            for token in rest.replace(",", " ").split():
                name, slash, arity = token.partition("/")
                if not slash or not arity.isdigit():
                    raise ParseError(
                        f"line {line_number}: .output wants name/arity, got {token!r}"
                    )
                program.declare_output(name, int(arity))
            continue
        if not buffer:
            start_line = line_number
        buffer = f"{buffer} {stripped}".strip()
        while "." in buffer:
            statement, buffer = buffer.split(".", 1)
            buffer = buffer.strip()
            statement = statement.strip()
            if not statement:
                continue
            if ":-" in statement:
                head_text, body_text = statement.split(":-", 1)
                head = _parse_atom(head_text, start_line)
                body = tuple(
                    _parse_literal(part, start_line)
                    for part in _LITERAL_SPLIT_RE.split(body_text)
                )
                rule_lines[len(program.rules)] = start_line
                program.rules.append(unchecked_rule(head, body))
            else:
                atom = _parse_atom(statement, start_line)
                if any(isinstance(a, Variable) for a in atom.args):
                    # A "fact" with variables: an unsafe bodiless rule —
                    # hold it for the analyzer rather than rejecting here.
                    rule_lines[len(program.rules)] = start_line
                    program.rules.append(unchecked_rule(atom, ()))
                else:
                    program.add_fact(DatalogFact(atom))
            start_line = line_number
    if buffer:
        raise ParseError(
            f"line {start_line}: statement is missing its final '.': {buffer!r}"
        )
    return program, rule_lines


# -- the CLI -----------------------------------------------------------------
def _codes_table():
    lines = ["code    severity  description"]
    for code, (severity, description) in sorted(CODES.items()):
        lines.append(f"{code}   {severity:<9} {description}")
    return "\n".join(lines)


def main(argv=None):
    """``python -m repro.datalog.analyze`` — lint a Datalog source file or a
    generated workload program and print diagnostics with locations.
    Exit status: 0 clean, 1 findings (errors; any finding under
    ``--strict``), 2 usage or parse errors."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.datalog.analyze",
        description=(
            "Static analysis for Datalog programs: safety, arity/kind "
            "conflicts, stratifiability (with the negative cycle spelled "
            "out), duplicate/subsumed rules and dead code.  See "
            "docs/analysis.md for the file syntax and the code table."
        ),
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="a Datalog source file (classic syntax; '%%' comments, "
             "'.output p/2' directives)",
    )
    parser.add_argument(
        "--workload", metavar="NAME", default=None,
        help="lint a generated workload program by registry name "
             "(see repro.workloads.WORKLOAD_PROGRAMS)",
    )
    parser.add_argument(
        "--param", action="append", default=[], metavar="KEY=VALUE",
        help="an integer parameter for --workload (repeatable)",
    )
    parser.add_argument(
        "--output", action="append", default=[], metavar="PRED/ARITY",
        help="declare an output predicate for the reachability checks "
             "(repeatable; adds to any .output directives)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any finding, not just errors (the engine's "
             "check='strict' contract)",
    )
    parser.add_argument(
        "--codes", action="store_true",
        help="print the diagnostic code table and exit",
    )
    args = parser.parse_args(argv)
    if args.codes:
        print(_codes_table())
        return 0
    if (args.path is None) == (args.workload is None):
        parser.print_usage()
        print("analyze: give exactly one of a source file or --workload NAME")
        return 2

    rule_lines = {}
    if args.workload is not None:
        from repro.workloads import WORKLOAD_PROGRAMS

        builder = WORKLOAD_PROGRAMS.get(args.workload)
        if builder is None:
            known = ", ".join(sorted(WORKLOAD_PROGRAMS))
            print(f"analyze: unknown workload {args.workload!r} (known: {known})")
            return 2
        parameters = {}
        for item in args.param:
            key, equals, value = item.partition("=")
            if not equals or not value.lstrip("-").isdigit():
                print(f"analyze: --param wants KEY=INTEGER, got {item!r}")
                return 2
            parameters[key] = int(value)
        try:
            program = builder(**parameters)
        except TypeError as error:
            print(f"analyze: {error}")
            return 2
        source = f"workload:{args.workload}"
    else:
        import pathlib

        path = pathlib.Path(args.path)
        try:
            text = path.read_text()
        except OSError as error:
            print(f"analyze: cannot read {args.path}: {error}")
            return 2
        try:
            program, rule_lines = parse_program(text)
        except ParseError as error:
            print(f"{path.name}: parse error: {error}")
            return 2
        source = path.name

    analysis = analyze_program(
        program, outputs=args.output or None, rule_lines=rule_lines
    )
    for diagnostic in analysis.diagnostics:
        print(f"{source}:{diagnostic}")
    errors = len(analysis.errors())
    warnings_found = len(analysis.warnings())
    facts, rules = len(program.facts), len(program.rules)
    print(
        f"{source}: {facts} facts, {rules} rules — "
        f"{errors} error(s), {warnings_found} warning(s)"
    )
    if errors or (args.strict and analysis.strict_violations()):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    import sys

    sys.exit(main())
