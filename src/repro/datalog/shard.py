"""Hash-partitioned fact indexes: the storage substrate of parallel evaluation.

A :class:`ShardedFactIndex` distributes the buckets of a
:class:`~repro.datalog.index.FactIndex` across *N* shards.  The partition
key is a **stable hash of** ``(predicate, first argument)`` — stable meaning
CRC-based, independent of ``PYTHONHASHSEED``, identical run to run — which
makes one shard both

* the unit of **data distribution**: all facts of a predicate carrying the
  same first argument live together, so a join probe whose first position is
  bound (the overwhelmingly common case under the engine's greedy
  bound-prefix scheduling) touches exactly one shard, and
* the unit of **parallel work**: a semi-naive round's delta splits into
  per-shard sub-deltas whose join passes are independent and can be fanned
  out across a worker pool (:mod:`repro.datalog.parallel`), the per-shard
  result sets merging by plain set union — a deterministic reduction, since
  the least model is a set.

The class is a drop-in for :class:`~repro.datalog.index.FactIndex` wherever
the engine reads or writes facts: it implements the same construction
(``add`` / ``add_all`` / ``absorb``), deletion (``discard`` / ``discard_all``
/ ``retract_all``) and lookup (``candidates`` / ``histogram`` /
``selectivity`` / ``relations`` / ``count`` / containment / iteration)
surface.  ``absorb`` merges **bucket-wise per shard** when both sides share
a partitioning (the per-round delta merge of the parallel fixpoint hits
this fast path); deletion (``retract_all``, the DRed overdeletion of
:class:`~repro.datalog.incremental.MaterializedModel`) routes each fact to
its owning shard, so only the shards a batch touches do any work.
Per-shard histograms merge into the global
:class:`~repro.datalog.stats.JoinStatistics` snapshots without the planner
knowing the index is sharded.

Skewed workloads (a hot predicate, a hub first-argument value) can leave
one shard much fuller than the rest; :meth:`ShardedFactIndex.skew` measures
this and :meth:`ShardedFactIndex.repartition` /
:meth:`ShardedFactIndex.rebalance` re-hash the facts into a different shard
count or with a different salt.  Repartitioning never changes the *set* of
facts, so evaluation results are unaffected — only the distribution of
work.
"""

from itertools import chain
from zlib import crc32

from repro.datalog.columnar import ColumnarFactIndex, RowStore
from repro.datalog.index import FactIndex
from repro.datalog.interner import Interner

#: default shard count of :class:`ShardedFactIndex` (and of the engine's
#: ``strategy="parallel"``) when none is given.
DEFAULT_SHARDS = 4


class ShardedFactIndex:
    """A mutable set of ground atoms partitioned across N shards by stable
    hash of ``(predicate, first argument)``.

    ``storage`` selects the per-shard backend: ``"objects"`` gives
    :class:`~repro.datalog.index.FactIndex` shards, ``"columnar"`` gives
    :class:`~repro.datalog.columnar.ColumnarFactIndex` shards over one
    shared :class:`~repro.datalog.interner.Interner` (pass ``interner`` to
    share ids with an engine; one is created otherwise).  The surface is
    identical either way."""

    __slots__ = ("_shards", "_counts", "_salt", "_storage", "_interner")

    def __init__(self, atoms=(), shards=DEFAULT_SHARDS, salt=0,
                 storage="objects", interner=None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if storage not in ("objects", "columnar"):
            raise ValueError(f"storage must be 'objects' or 'columnar', got {storage!r}")
        if storage == "columnar":
            interner = interner if interner is not None else Interner()
            self._shards = tuple(
                ColumnarFactIndex(interner=interner) for _ in range(shards)
            )
        else:
            if interner is not None:
                raise ValueError("interner is only meaningful with storage='columnar'")
            self._shards = tuple(FactIndex() for _ in range(shards))
        self._storage = storage
        self._interner = interner
        # (predicate, arity) -> fact count across all shards, kept eagerly so
        # count()/relations() never fan out.
        self._counts = {}
        self._salt = salt
        self.add_all(atoms)

    # -- partitioning --------------------------------------------------------
    @property
    def shard_count(self):
        """How many shards the index is partitioned into."""
        return len(self._shards)

    @property
    def storage(self):
        """The per-shard backend: ``"objects"`` or ``"columnar"``."""
        return self._storage

    @property
    def interner(self):
        """The shared symbol table of columnar shards (``None`` under
        object storage)."""
        return self._interner

    def shard_indexes(self):
        """The backing shard indexes, in shard order (treat as read-only)."""
        return self._shards

    @property
    def salt(self):
        """The hash salt of the current partitioning (changed by
        :meth:`rebalance` to redistribute an unlucky assignment)."""
        return self._salt

    def shard_of(self, atom):
        """The shard number *atom* is (or would be) stored in."""
        return self._route(atom.predicate, atom.args[0] if atom.args else None)

    def shard(self, number):
        """The backing :class:`~repro.datalog.index.FactIndex` of one shard
        (treat as read-only; mutate through this index so the relation
        counts stay honest)."""
        return self._shards[number]

    def _route(self, predicate, first):
        name = first.name if first is not None else ""
        key = f"{self._salt}\x1f{predicate}\x1f{name}"
        return crc32(key.encode("utf-8")) % len(self._shards)

    def shard_sizes(self):
        """Fact counts per shard, in shard order."""
        return [len(shard) for shard in self._shards]

    def skew(self):
        """How unbalanced the partitioning is: largest shard over mean shard
        size (1.0 for a perfectly balanced index, 0.0 when empty)."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        if not total:
            return 0.0
        return max(sizes) / (total / len(sizes))

    def repartition(self, shards=None, salt=None):
        """Re-hash every fact into a fresh :class:`ShardedFactIndex` with
        the given shard count and/or salt (defaults: keep the current ones).
        The fact *set* is unchanged — only its distribution across shards."""
        return ShardedFactIndex(
            iter(self),
            shards=self.shard_count if shards is None else shards,
            salt=self._salt if salt is None else salt,
            storage=self._storage,
            interner=self._interner,
        )

    def rebalance(self, max_skew=1.5):
        """Return a rebalanced index when :meth:`skew` exceeds *max_skew*
        (re-hashing with a fresh salt), otherwise return ``self`` unchanged.
        Re-salting redistributes unlucky assignments of ``(predicate,
        first-argument)`` groups; a single group hotter than ``total /
        shards`` is indivisible under this partition key and will keep its
        shard full."""
        if self.skew() <= max_skew:
            return self
        return self.repartition(salt=self._salt + 1)

    # -- construction --------------------------------------------------------
    def add(self, atom):
        """Insert *atom* into its shard; return True when it was new."""
        if self._shards[self.shard_of(atom)].add(atom):
            key = (atom.predicate, len(atom.args))
            self._counts[key] = self._counts.get(key, 0) + 1
            return True
        return False

    def add_all(self, atoms):
        """Insert every atom; return how many were new."""
        added = 0
        for atom in atoms:
            if self.add(atom):
                added += 1
        return added

    def absorb(self, other):
        """Merge *other* (a :class:`~repro.datalog.index.FactIndex` or
        another :class:`ShardedFactIndex`) into this one.  When both sides
        share a partitioning (same shard count and salt — the per-round
        delta case), the merge is **shard-local**: each shard absorbs its
        counterpart bucket-wise with no re-routing.  As with
        ``FactIndex.absorb``, *other* is assumed disjoint from this index.
        """
        if (
            isinstance(other, ShardedFactIndex)
            and other.shard_count == self.shard_count
            and other._salt == self._salt
            and other._storage == self._storage
        ):
            for mine, theirs in zip(self._shards, other._shards):
                mine.absorb(theirs)
            for key, count in other._counts.items():
                self._counts[key] = self._counts.get(key, 0) + count
            return self
        self.add_all(iter(other))
        return self

    def absorb_row_facts(self, facts):
        """Columnar row face: route ``(key, id-row)`` facts to their owning
        shards, insert them, and return the per-shard delta
        :class:`~repro.datalog.columnar.RowStore`\\ s (in shard order) — the
        parallel scheduler's compact delta exchange.  The facts are assumed
        new (the semi-naive delta guarantee), so the relation counts update
        without presence checks."""
        if self._storage != "columnar":
            raise ValueError("absorb_row_facts requires storage='columnar'")
        parameter = self._interner.parameter
        route = self._route
        deltas = [RowStore() for _ in self._shards]
        counts = self._counts
        for key, row in facts:
            first = parameter(row[0]) if row else None
            deltas[route(key[0], first)].add_row(key, row)
            counts[key] = counts.get(key, 0) + 1
        for shard, delta in zip(self._shards, deltas):
            if delta:
                shard.store.absorb(delta)
        return deltas

    # -- deletion ------------------------------------------------------------
    def discard(self, atom):
        """Remove *atom* from its shard; return True when it was present."""
        if self._shards[self.shard_of(atom)].discard(atom):
            key = (atom.predicate, len(atom.args))
            remaining = self._counts.get(key, 0) - 1
            if remaining > 0:
                self._counts[key] = remaining
            else:
                self._counts.pop(key, None)
            return True
        return False

    def discard_all(self, atoms):
        """Remove every atom; return how many were actually present."""
        removed = 0
        for atom in atoms:
            if self.discard(atom):
                removed += 1
        return removed

    def retract_all(self, other):
        """Subtract another index (sharded or not) — the deletion dual of
        :meth:`absorb`; facts not present here are ignored.  Deletion is
        routed per shard, so a DRed overdeletion batch only touches the
        shards its facts live in.  Returns how many facts were removed."""
        return self.discard_all(iter(other))

    # -- lookup --------------------------------------------------------------
    def __contains__(self, atom):
        return atom in self._shards[self.shard_of(atom)]

    def __len__(self):
        return sum(self._counts.values())

    def __iter__(self):
        return chain.from_iterable(self._shards)

    def __bool__(self):
        return bool(self._counts)

    def relations(self):
        """The set of ``(predicate, arity)`` keys with at least one fact."""
        return set(self._counts)

    def relation(self, predicate, arity):
        """All facts of ``predicate/arity`` across every shard (a new set)."""
        result = set()
        for shard in self._shards:
            result |= shard.relation(predicate, arity)
        return result

    def count(self, predicate, arity):
        """How many facts of ``predicate/arity`` are held (an O(1) read of
        the eagerly maintained per-relation totals)."""
        return self._counts.get((predicate, arity), 0)

    def candidates(self, predicate, arity, bound):
        """The facts a join step may match given *bound* ``(position,
        value)`` pairs.  A bound first argument routes the probe to its
        single owning shard (the partition key); otherwise the per-shard
        candidate buckets are chained."""
        bound = list(bound)
        for position, value in bound:
            if position == 0:
                return self._shards[self._route(predicate, value)].candidates(
                    predicate, arity, bound
                )
        return chain.from_iterable(
            shard.candidates(predicate, arity, bound) for shard in self._shards
        )

    def histogram(self, predicate, arity, position):
        """The bucket-size histogram of one argument *position*, merged
        across shards (position 0 is disjoint across shards by the partition
        key; other positions sum per-value)."""
        merged = {}
        for shard in self._shards:
            for value, size in shard.histogram(predicate, arity, position).items():
                merged[value] = merged.get(value, 0) + size
        return merged

    def histogram_sizes(self, predicate, arity, position):
        """Just the merged bucket sizes (the planner refresh face).  Under
        columnar storage the per-shard histograms merge in id space — no
        parameter decoding per refresh."""
        merged = {}
        if self._storage == "columnar":
            for shard in self._shards:
                histogram = shard.store.histogram(predicate, arity, position)
                for value, size in histogram.items():
                    merged[value] = merged.get(value, 0) + size
        else:
            for shard in self._shards:
                for value, size in shard.histogram(predicate, arity, position).items():
                    merged[value] = merged.get(value, 0) + size
        return list(merged.values())

    def selectivity(self, predicate, arity, positions):
        """The uniform-distribution estimate of how many facts survive
        binding the given argument *positions* — total cardinality divided
        by the merged distinct-value count of each bound position, matching
        :meth:`FactIndex.selectivity <repro.datalog.index.FactIndex.selectivity>`
        semantics on the merged relation."""
        total = self.count(predicate, arity)
        if not total:
            return 0.0
        estimate = float(total)
        columnar = self._storage == "columnar"
        for position in positions:
            distinct = set()
            for shard in self._shards:
                if columnar:
                    distinct.update(shard.store.histogram(predicate, arity, position))
                else:
                    distinct.update(shard.histogram(predicate, arity, position))
            if len(distinct) > 1:
                estimate /= len(distinct)
        return estimate

    def __repr__(self):
        rendered = ", ".join(
            f"{predicate}/{arity}:{count}"
            for (predicate, arity), count in sorted(self._counts.items())
        )
        return (
            f"ShardedFactIndex({len(self)} facts over {self.shard_count} shards"
            f"; {rendered})"
        )
