"""Constant interning: dense integer ids for the parameters of a program.

Python-object facts are the storage ceiling the ROADMAP names: at millions
of atoms, every join probe pays a Python-level ``__hash__``/``__eq__`` call
on :class:`~repro.logic.terms.Parameter` and every derived fact allocates an
:class:`~repro.logic.syntax.Atom` (a non-slotted dataclass instance carrying
its own ``__dict__``), and the resident object graph taxes every subsequent
cyclic-GC pass.  An :class:`Interner` removes both costs at the root: each
distinct parameter is assigned a **dense integer id** (0, 1, 2, ... in first
-seen order) once, at the ``Program``/``World`` boundary, and everything
inside the columnar storage layer (:mod:`repro.datalog.columnar`) speaks
ids — hashed and compared at C speed, stored in machine-sized arrays, and
decoded back to the *original* parameter objects only at the API edge.

The table is bidirectional and append-only: ids are never reused and an
interned parameter keeps its id for the lifetime of the table, so id-tuples
remain stable across evaluation rounds, incremental updates and shard
repartitions.  Interning happens on the single-threaded write paths (EDB
load, rule compilation, ``apply`` batches); the parallel scheduler's worker
threads only ever *read* the table (derived facts recombine ids that already
exist), so no locking is needed.
"""

from repro.logic.syntax import Atom
from repro.logic.terms import Parameter


def constant_kind(parameter):
    """The lexical *kind* of a constant — ``"int"`` when its name parses as
    an integer, ``"symbol"`` otherwise.

    Parameters carry no type information (they are name-only terms), so this
    lexical classification is what the static analyzer's per-predicate column
    signatures are built from: a column whose facts mix kinds (``edge(1, b)``
    next to ``edge(n1, b)``) almost always indicates two encodings of the
    same domain leaking into one relation, and is reported as a
    kind-conflict diagnostic before the ids ever reach the columnar store.
    """
    try:
        int(parameter.name)
    except (TypeError, ValueError):
        return "symbol"
    return "int"


def fast_atom(predicate, args):
    """Construct a ground :class:`~repro.logic.syntax.Atom` without
    re-validating its arguments — the decode path of the columnar storage
    layer, where every argument is by construction a parameter that already
    passed validation when it was interned.  Hash semantics are identical to
    ``Atom.__init__`` (same formula), so decoded atoms compare and hash
    equal to the originals.

    ``Atom`` is a (non-slotted) frozen dataclass, so writing the instance
    ``__dict__`` directly lands the fields exactly where attribute lookup
    reads them while skipping the frozen-dataclass ``__setattr__`` guard —
    the decode loop allocates millions of atoms, so the three saved calls
    per atom matter."""
    atom = Atom.__new__(Atom)
    fields = atom.__dict__
    fields["predicate"] = predicate
    fields["args"] = args
    fields["_hash"] = hash((predicate, args))
    return atom


class Interner:
    """A bidirectional symbol table mapping
    :class:`~repro.logic.terms.Parameter` objects to dense integer ids.

    One interner is shared by everything that must agree on ids: an engine
    and its columnar store, a materialized model and its deltas, the shards
    of a :class:`~repro.datalog.shard.ShardedFactIndex`.  Decoding returns
    the identical parameter objects that were interned (not equal copies),
    so no string is ever re-parsed and decoded atoms share their arguments
    with the program that produced them.
    """

    __slots__ = ("_ids", "_parameters")

    def __init__(self, parameters=()):
        self._ids = {}
        self._parameters = []
        for parameter in parameters:
            self.intern(parameter)

    # -- encoding ------------------------------------------------------------
    def intern(self, parameter):
        """The id of *parameter*, assigning the next dense id when it has
        not been seen before."""
        ident = self._ids.get(parameter)
        if ident is None:
            if not isinstance(parameter, Parameter):
                raise TypeError(f"only parameters are interned, got {parameter!r}")
            ident = len(self._parameters)
            self._ids[parameter] = ident
            self._parameters.append(parameter)
        return ident

    def id_of(self, parameter):
        """The id of *parameter*, or ``None`` when it was never interned —
        the read-only probe used by queries and membership checks, which
        must not grow the table for constants the data has never seen."""
        return self._ids.get(parameter)

    def encode_atom(self, atom):
        """Encode a ground atom as ``((predicate, arity), id_tuple)`` —
        the row-fact representation of the columnar storage layer."""
        args = atom.args
        return (atom.predicate, len(args)), tuple(self.intern(a) for a in args)

    def row_of(self, atom):
        """The id-tuple of a ground atom when every argument is already
        interned, ``None`` otherwise (the membership-probe dual of
        :meth:`encode_atom`)."""
        ids = self._ids
        row = []
        for arg in atom.args:
            ident = ids.get(arg)
            if ident is None:
                return None
            row.append(ident)
        return tuple(row)

    # -- decoding ------------------------------------------------------------
    def parameter(self, ident):
        """The parameter owning id *ident* (the identical object that was
        interned)."""
        return self._parameters[ident]

    def decode_row(self, predicate, row):
        """Decode one ``(predicate, id_tuple)`` row back into a real
        :class:`~repro.logic.syntax.Atom`."""
        parameters = self._parameters
        return fast_atom(predicate, tuple([parameters[i] for i in row]))

    @property
    def parameters(self):
        """Every interned parameter, in id order (treat as read-only)."""
        return self._parameters

    def __len__(self):
        return len(self._parameters)

    def __contains__(self, parameter):
        return parameter in self._ids

    def __repr__(self):
        return f"Interner({len(self._parameters)} parameters)"
