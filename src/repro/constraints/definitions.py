"""The five definitions of constraint satisfaction compared in Section 3.

For a database ``DB`` and an integrity constraint ``IC``:

* **Definition 3.1** (consistency, open databases; Kowalski):
  ``DB`` satisfies ``IC`` iff ``DB + IC`` is satisfiable.
* **Definition 3.2** (entailment, open databases; Reiter 1984):
  ``DB`` satisfies ``IC`` iff ``DB ⊨ IC``.
* **Definition 3.3** (consistency, closed Prolog-like databases;
  Sadri–Kowalski): ``Comp(DB) + IC`` is satisfiable.
* **Definition 3.4** (entailment, closed Prolog-like databases;
  Lloyd–Topor): ``Comp(DB) ⊨ IC``.
* **Definition 3.5** (the paper's proposal): ``IC`` is a KFOPCE sentence and
  ``DB ⊨ IC`` under the epistemic entailment of Definition 2.1.

The first four expect a *first-order* IC; 3.3/3.4 additionally require a
Prolog-like (Datalog) database for the completion to exist.  The module keeps
all five side by side so that the paper's counter-examples — ``{emp(Mary)}``
should violate the social-security constraint but satisfies 3.1, the empty
database should satisfy it but fails 3.2 — can be demonstrated and tested
mechanically (experiment E2).
"""

import enum

from repro.exceptions import NotFirstOrderError
from repro.logic.classify import is_first_order
from repro.prover.prove import FirstOrderProver
from repro.semantics.config import DEFAULT_CONFIG
from repro.semantics.reduction import EpistemicReducer


class SatisfactionDefinition(enum.Enum):
    """Which of the paper's five notions to use."""

    CONSISTENCY = "3.1-consistency"
    ENTAILMENT = "3.2-entailment"
    COMPLETION_CONSISTENCY = "3.3-completion-consistency"
    COMPLETION_ENTAILMENT = "3.4-completion-entailment"
    EPISTEMIC = "3.5-epistemic"


def _first_order_only(constraint, definition):
    if not is_first_order(constraint):
        raise NotFirstOrderError(
            f"{definition} expects a first-order constraint; {constraint} mentions K"
        )


def satisfies_consistency(theory, constraint, config=DEFAULT_CONFIG):
    """Definition 3.1: ``DB + IC`` is satisfiable."""
    _first_order_only(constraint, "Definition 3.1")
    prover = FirstOrderProver.for_theory(list(theory) + [constraint], config=config)
    return prover.is_satisfiable()


def satisfies_entailment(theory, constraint, config=DEFAULT_CONFIG):
    """Definition 3.2: ``DB ⊨_FOPCE IC``."""
    _first_order_only(constraint, "Definition 3.2")
    prover = FirstOrderProver.for_theory(theory, queries=[constraint], config=config)
    return prover.entails(constraint)


def _completion_of(datalog_program):
    from repro.datalog.completion import clark_completion

    return clark_completion(datalog_program)


def satisfies_completion_consistency(datalog_program, constraint, config=DEFAULT_CONFIG):
    """Definition 3.3: ``Comp(DB) + IC`` is satisfiable.

    Only applies to Prolog-like databases, supplied as a
    :class:`~repro.datalog.program.DatalogProgram`.
    """
    _first_order_only(constraint, "Definition 3.3")
    completion = _completion_of(datalog_program)
    prover = FirstOrderProver.for_theory(completion + [constraint], config=config)
    return prover.is_satisfiable()


def satisfies_completion_entailment(datalog_program, constraint, config=DEFAULT_CONFIG):
    """Definition 3.4: ``Comp(DB) ⊨ IC``."""
    _first_order_only(constraint, "Definition 3.4")
    completion = _completion_of(datalog_program)
    prover = FirstOrderProver.for_theory(completion, queries=[constraint], config=config)
    return prover.entails(constraint)


def satisfies_epistemic(theory, constraint, config=DEFAULT_CONFIG, reducer=None):
    """Definition 3.5 (the paper's): ``Σ ⊨ IC`` with IC a KFOPCE sentence.

    Testing constraint satisfaction is *identical* to query evaluation — this
    function is a thin wrapper over the epistemic reduction so that the code
    mirrors the paper's formal identification of the two problems.
    """
    if reducer is None:
        reducer = EpistemicReducer(theory, config=config, queries=[constraint])
    return reducer.entails(constraint)


def satisfies(theory, constraint, definition=SatisfactionDefinition.EPISTEMIC, config=DEFAULT_CONFIG):
    """Dispatch to one of the five definitions.

    *theory* must be a :class:`~repro.datalog.program.DatalogProgram` for the
    completion-based definitions and an iterable of FOPCE sentences for the
    others.
    """
    if definition is SatisfactionDefinition.CONSISTENCY:
        return satisfies_consistency(theory, constraint, config=config)
    if definition is SatisfactionDefinition.ENTAILMENT:
        return satisfies_entailment(theory, constraint, config=config)
    if definition is SatisfactionDefinition.COMPLETION_CONSISTENCY:
        return satisfies_completion_consistency(theory, constraint, config=config)
    if definition is SatisfactionDefinition.COMPLETION_ENTAILMENT:
        return satisfies_completion_entailment(theory, constraint, config=config)
    if definition is SatisfactionDefinition.EPISTEMIC:
        return satisfies_epistemic(theory, constraint, config=config)
    raise ValueError(f"unknown definition {definition!r}")
