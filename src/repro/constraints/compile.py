"""Compiling epistemic integrity constraints into Datalog violation rules.

The paper makes constraint checking query evaluation (Definition 3.5); this
module makes it *incremental* by compiling each modalized constraint into
stratified Datalog rules that derive ``__violation__<id>(witness...)`` atoms.
The translation works on the constraint's admissible form (Example 5.4),
which is always ``~ exists x̄. body`` — the body *is* the violation query:

* ``K a`` conjuncts become positive body literals (the database knows ``a``
  exactly when the ground atom is present, for a ground-atomic database);
* negated subqueries — ``~ exists y. K a(x, y)``, ``~K (a & b)`` — become
  stratified negation over derived auxiliary subgoals
  (``__viol_aux__<id>_<n>(x) :- a(x, y)`` then ``..., not __viol_aux__...``);
* ``K (t1 = t2)`` conjuncts are eliminated by substitution (parameters are
  pairwise distinct, so a known equality is a syntactic one);
* disjunctions distribute into one rule per branch.

The compiled rules are exact for the Prolog-like reading of the database:
ground atomic sentences only.  :class:`~repro.constraints.views.ViolationView`
enforces that boundary at runtime (constraints whose predicates are touched
by non-atomic sentences are re-checked from scratch).

Constraints outside the fragment raise
:class:`~repro.exceptions.ConstraintCompilationError` with a machine-readable
``code``; :func:`compile_constraints` collects those as
:class:`CompilationFallback` entries so the checker can route them to the
from-scratch demo/reduction path and surface the reason on the report.
The fragment boundary, exercised exhaustively by the test-suite over
:mod:`repro.constraints.library`:

================  =========================================================
code              meaning
================  =========================================================
open-formula      the constraint has free variables (not a sentence)
first-order       no ``K`` operator — the paper's reading would modalize it
not-k1            iterated modalities (``K`` inside ``K``)
not-subjective    an atom outside ``K`` addresses the external world
not-admissible    the admissible rewriting failed Definition 5.3
no-witness        admissible form is not ``~ exists x̄. body`` with at least
                  one witness variable free in the body
negation-in-k     ``K (~w)`` — atomic databases never know negative facts
universal-in-k    ``K (forall x. w)`` — unbounded under the atomic reading
negated-equality  the subquery reduces to a disequality test between bound
                  terms (e.g. ``unique_attribute``), outside Datalog
no-anchor         a rule branch has no positive literal to range-restrict it
unsafe-rule       a witness or negated variable is not bound positively
unsupported       any other formula node the translation does not cover
================  =========================================================
"""

from dataclasses import dataclass
from typing import Tuple

from repro.datalog.program import DatalogLiteral, DatalogRule
from repro.exceptions import ConstraintCompilationError, UnsafeRuleError
from repro.logic.classify import (
    explain_not_admissible,
    explain_not_subjective,
    is_admissible,
    is_first_order,
    is_k1,
    is_subjective,
)
from repro.logic.printer import to_text
from repro.logic.substitution import substitute
from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    Forall,
    Know,
    Not,
    Or,
    Top,
    free_variables,
    predicates_of,
)
from repro.logic.terms import Variable
from repro.logic.transform import to_admissible_form

#: Prefix of the per-constraint violation head predicates.  The double
#: underscore keeps the family out of any user predicate namespace.
VIOLATION_PREFIX = "__violation__"

#: Prefix of the derived auxiliary subgoal predicates that stratified
#: negation ranges over.
AUX_PREFIX = "__viol_aux__"

# Branch-outcome sentinels used by the rule emitter.
_EMITTED = object()
_DEAD = object()
_TAUTOLOGY = object()
_ALWAYS_TRUE = object()
_ALWAYS_FALSE = object()


@dataclass(frozen=True)
class CompiledConstraint:
    """One constraint compiled to violation rules.

    ``predicate`` is the violation head (``__violation__<constraint_id>``),
    ``witnesses`` the head variables in the order the view reports witness
    tuples — sorted by name, exactly the projection order of
    :meth:`~repro.constraints.checker.IntegrityChecker` witnesses, so the two
    paths produce comparable tuples.  ``edb_predicates`` are the database
    predicates the constraint consults (the runtime atomicity guard and the
    relevance filter key off them).  An empty ``rules`` tuple is legal: the
    violation query was statically unsatisfiable, the constraint can never be
    violated.
    """

    constraint: object
    constraint_id: str
    predicate: str
    witnesses: Tuple[Variable, ...]
    rules: Tuple[DatalogRule, ...]
    edb_predicates: frozenset

    def __str__(self):
        return f"{self.constraint_id}: {to_text(self.constraint)} [{len(self.rules)} rules]"


@dataclass(frozen=True)
class CompilationFallback:
    """Why one constraint is checked from scratch instead of via the view.

    ``code`` is the machine-readable fragment-boundary reason (see the module
    docstring table); ``message`` the human-readable detail.
    """

    constraint: object
    constraint_id: str
    code: str
    message: str

    def __str__(self):
        return f"{self.constraint_id}: fallback[{self.code}] {to_text(self.constraint)}"


@dataclass(frozen=True)
class CompiledConstraintSet:
    """The outcome of compiling a constraint list: the compiled constraints
    plus the fallbacks, in registration order."""

    compiled: Tuple[CompiledConstraint, ...]
    fallbacks: Tuple[CompilationFallback, ...]

    def rules(self):
        """Every violation/auxiliary rule of every compiled constraint."""
        return [rule for compiled in self.compiled for rule in compiled.rules]

    def by_predicate(self):
        """Map each violation head predicate to its compiled constraint."""
        return {compiled.predicate: compiled for compiled in self.compiled}

    def compiled_for(self, constraint):
        """The :class:`CompiledConstraint` of *constraint* (``None`` when it
        fell back or was never part of this set)."""
        for compiled in self.compiled:
            if compiled.constraint == constraint:
                return compiled
        return None

    def fallback_for(self, constraint):
        """The :class:`CompilationFallback` of *constraint*, or ``None``."""
        for fallback in self.fallbacks:
            if fallback.constraint == constraint:
                return fallback
        return None

    def __len__(self):
        return len(self.compiled) + len(self.fallbacks)


class _Fallback(Exception):
    """Internal: the translation left the compilable fragment."""

    def __init__(self, code, message):
        super().__init__(message)
        self.code = code
        self.message = message


class _Branch:
    """One disjunctive branch of the violation query: positive atoms,
    negated subformulas (still un-translated) and equality conjuncts."""

    __slots__ = ("atoms", "negations", "equalities")

    def __init__(self, atoms=(), negations=(), equalities=()):
        self.atoms = list(atoms)
        self.negations = list(negations)
        self.equalities = list(equalities)

    def merged(self, other):
        return _Branch(
            self.atoms + other.atoms,
            self.negations + other.negations,
            self.equalities + other.equalities,
        )


def _product(lefts, rights):
    return [left.merged(right) for left in lefts for right in rights]


def _branches(formula):
    """Translate a subjective formula (positive context) into disjunctive
    branches.  ``K w`` defers to :func:`_known_branches`; a bare negation
    becomes a deferred item the emitter turns into stratified negation."""
    if isinstance(formula, Know):
        if is_first_order(formula.body):
            return _known_branches(formula.body)
        raise _Fallback(
            "not-k1", f"K applies to a non-first-order body: {to_text(formula)}"
        )
    if isinstance(formula, Equals):
        return [_Branch(equalities=[(formula.left, formula.right)])]
    if isinstance(formula, Top):
        return [_Branch()]
    if isinstance(formula, Bottom):
        return []
    if isinstance(formula, And):
        return _product(_branches(formula.left), _branches(formula.right))
    if isinstance(formula, Or):
        return _branches(formula.left) + _branches(formula.right)
    if isinstance(formula, Exists):
        # The existential variable simply becomes a rule variable — Datalog
        # bodies quantify unbound variables existentially, and the admissible
        # form's rename-apart pass guarantees it collides with nothing.
        return _branches(formula.body)
    if isinstance(formula, Not):
        return [_Branch(negations=[formula.body])]
    if isinstance(formula, Atom):
        raise _Fallback(
            "not-subjective",
            f"the atom {to_text(formula)} outside K addresses the external world",
        )
    raise _Fallback(
        "unsupported",
        f"cannot compile a {type(formula).__name__} node: {to_text(formula)}",
    )


def _known_branches(formula):
    """Translate a first-order formula under ``K`` against the ground-atomic
    reading: K distributes over ``&``, ``|`` and ``exists`` (exact for a
    database of ground atoms — the boundary the view enforces at runtime),
    atoms become positive literals, and negation/universals fall back (an
    atomic database never knows a negative or unbounded fact usefully)."""
    if isinstance(formula, Atom):
        return [_Branch(atoms=[formula])]
    if isinstance(formula, Equals):
        return [_Branch(equalities=[(formula.left, formula.right)])]
    if isinstance(formula, Top):
        return [_Branch()]
    if isinstance(formula, Bottom):
        return []
    if isinstance(formula, And):
        return _product(_known_branches(formula.left), _known_branches(formula.right))
    if isinstance(formula, Or):
        return _known_branches(formula.left) + _known_branches(formula.right)
    if isinstance(formula, Exists):
        return _known_branches(formula.body)
    if isinstance(formula, Not):
        raise _Fallback(
            "negation-in-k",
            f"K over a negation is outside the atomic reading: {to_text(formula)}",
        )
    if isinstance(formula, Forall):
        raise _Fallback(
            "universal-in-k",
            f"K over a universal is outside the atomic reading: {to_text(formula)}",
        )
    raise _Fallback(
        "unsupported",
        f"cannot compile a {type(formula).__name__} node under K: {to_text(formula)}",
    )


class _Emitter:
    """Turns branches into safe Datalog rules, inventing auxiliary subgoal
    predicates for negated subqueries (recursively, so nested negation
    stratifies by construction: each auxiliary sits strictly below its
    consumer)."""

    def __init__(self, constraint_id):
        self.constraint_id = constraint_id
        self.rules = []
        self._aux_counter = 0

    def _fresh_aux(self):
        name = f"{AUX_PREFIX}{self.constraint_id}_{self._aux_counter}"
        self._aux_counter += 1
        return name

    def emit(self, head_predicate, head_terms, branch):
        """Emit the rule(s) deriving ``head_predicate(head_terms)`` from one
        *branch*.  Returns ``_EMITTED``, ``_DEAD`` (the branch can never
        hold) or ``_TAUTOLOGY`` (it always holds); raises :class:`_Fallback`
        outside the fragment."""
        # Known equalities resolve into a substitution: under the paper's
        # pairwise-distinct parameters, K(t1 = t2) holds exactly when the
        # terms unify syntactically.
        mapping = {}

        def resolve(term):
            seen = set()
            while isinstance(term, Variable) and term in mapping and term not in seen:
                seen.add(term)
                term = mapping[term]
            return term

        for left, right in branch.equalities:
            left, right = resolve(left), resolve(right)
            if left == right:
                continue
            if isinstance(left, Variable):
                mapping[left] = right
            elif isinstance(right, Variable):
                mapping[right] = left
            else:
                return _DEAD  # two distinct parameters are never equal
        flat = {variable: resolve(variable) for variable in mapping}

        atoms = [
            Atom(atom.predicate, tuple(resolve(term) for term in atom.args))
            for atom in branch.atoms
        ]
        literals = [DatalogLiteral(atom, True) for atom in atoms]
        for negated in branch.negations:
            if flat:
                negated = substitute(negated, flat)
            item = self._negative_literal(negated)
            if item is _ALWAYS_TRUE:
                continue
            if item is _ALWAYS_FALSE:
                return _DEAD
            literals.append(item)

        if not atoms:
            if len(literals) == 0 and not mapping:
                return _TAUTOLOGY
            if not branch.negations and mapping:
                raise _Fallback(
                    "negated-equality",
                    "the subquery reduces to a disequality test between bound "
                    "terms, which Datalog negation cannot express",
                )
            raise _Fallback(
                "no-anchor",
                "a rule branch has no positive K-atom to range-restrict it",
            )
        head = Atom(head_predicate, tuple(resolve(term) for term in head_terms))
        try:
            rule = DatalogRule(head, tuple(literals))
        except UnsafeRuleError as error:
            raise _Fallback("unsafe-rule", str(error))
        self.rules.append(rule)
        return _EMITTED

    def _negative_literal(self, negated):
        """Compile one negated subformula into a negative literal — direct
        when the subquery is a single atom over outer-bound variables, via a
        fresh auxiliary subgoal predicate otherwise."""
        sub_branches = _branches(negated)
        if not sub_branches:
            return _ALWAYS_TRUE  # negation of an unsatisfiable subquery
        outer = sorted(free_variables(negated), key=lambda v: v.name)
        if len(sub_branches) == 1:
            only = sub_branches[0]
            if (
                len(only.atoms) == 1
                and not only.negations
                and not only.equalities
                and {t for t in only.atoms[0].args if isinstance(t, Variable)}
                <= set(outer)
            ):
                return DatalogLiteral(only.atoms[0], False)
        aux = self._fresh_aux()
        head_terms = tuple(outer)
        mark = len(self.rules)
        emitted_any = False
        for sub_branch in sub_branches:
            branch_mark = len(self.rules)
            outcome = self.emit(aux, head_terms, sub_branch)
            if outcome is _TAUTOLOGY:
                del self.rules[mark:]
                return _ALWAYS_FALSE  # subquery always holds, negation never
            if outcome is _DEAD:
                del self.rules[branch_mark:]
                continue
            emitted_any = True
        if not emitted_any:
            del self.rules[mark:]
            return _ALWAYS_TRUE
        return DatalogLiteral(Atom(aux, head_terms), False)


def compile_constraint(constraint, constraint_id="c0"):
    """Compile one modalized constraint into violation rules.

    Returns a :class:`CompiledConstraint`; raises
    :class:`~repro.exceptions.ConstraintCompilationError` (with a
    machine-readable ``code``) when the constraint falls outside the
    fragment — see the module docstring for the boundary table.
    """

    def refuse(code, message):
        raise ConstraintCompilationError(
            f"{to_text(constraint)}: {message}", code=code, constraint=constraint
        )

    if free_variables(constraint):
        refuse("open-formula", "constraints must be sentences")
    if is_first_order(constraint):
        refuse(
            "first-order",
            "no K operator — the paper's reading would modalize it first "
            "(repro.constraints.modalize.modalize_constraint)",
        )
    if not is_k1(constraint):
        refuse("not-k1", "iterated modalities are outside the K1 fragment")
    admissible = to_admissible_form(constraint)
    if not is_subjective(admissible):
        refuse("not-subjective", explain_not_subjective(admissible))
    if not is_admissible(admissible):
        refuse("not-admissible", explain_not_admissible(admissible))
    if not isinstance(admissible, Not):
        refuse(
            "no-witness",
            "the admissible form is not a negated existential violation query",
        )
    body = admissible.body
    witness_variables = []
    while isinstance(body, Exists):
        witness_variables.append(body.variable)
        body = body.body
    body_free = free_variables(body)
    head_variables = sorted(
        (v for v in witness_variables if v in body_free), key=lambda v: v.name
    )
    if not head_variables:
        refuse("no-witness", "the violation query binds no witness variables")

    predicate = VIOLATION_PREFIX + constraint_id
    try:
        emitter = _Emitter(constraint_id)
        for branch in _branches(body):
            mark = len(emitter.rules)
            outcome = emitter.emit(predicate, tuple(head_variables), branch)
            if outcome is _DEAD:
                del emitter.rules[mark:]
            elif outcome is _TAUTOLOGY:
                raise _Fallback(
                    "no-anchor", "the violation query is unconditionally true"
                )
    except _Fallback as fallback:
        refuse(fallback.code, fallback.message)
    return CompiledConstraint(
        constraint=constraint,
        constraint_id=constraint_id,
        predicate=predicate,
        witnesses=tuple(head_variables),
        rules=tuple(emitter.rules),
        edb_predicates=frozenset(name for name, _ in predicates_of(constraint)),
    )


def compile_constraints(constraints, id_format="c{index}"):
    """Compile a constraint list, splitting it into the compiled constraints
    and the :class:`CompilationFallback` entries (never raises for fragment
    violations — that is the point).  ``id_format`` receives the registration
    ``index`` of each constraint."""
    compiled, fallbacks = [], []
    for index, constraint in enumerate(constraints):
        constraint_id = id_format.format(index=index)
        try:
            compiled.append(compile_constraint(constraint, constraint_id))
        except ConstraintCompilationError as error:
            fallbacks.append(
                CompilationFallback(
                    constraint=constraint,
                    constraint_id=constraint_id,
                    code=error.code,
                    message=str(error),
                )
            )
    return CompiledConstraintSet(tuple(compiled), tuple(fallbacks))


def is_compilable(constraint):
    """Return True when :func:`compile_constraint` accepts *constraint*."""
    try:
        compile_constraint(constraint)
        return True
    except ConstraintCompilationError:
        return False
