"""Checking a database against a set of integrity constraints.

The paper's Definition 3.5 makes constraint checking identical to query
evaluation: Σ satisfies IC iff Σ ⊨ IC.  :class:`IntegrityChecker` adds what a
working system needs on top of that identity:

* checking a whole constraint set and reporting which constraints fail,
* producing *witnesses* for failures — e.g. the known employee with no known
  social security number — by turning the constraint's negation into an open
  query and asking ``demo``/the reducer for its answers,
* two evaluation strategies — the ``demo`` evaluator on the admissible form
  of each constraint (Result 5.1) or the epistemic reduction — selectable
  per check,
* the incremental re-checking and procedural triggers sketched as items 4
  and 5 of the paper's discussion section (:mod:`repro.constraints.triggers`
  holds the trigger machinery).
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.logic.classify import is_admissible, is_first_order, is_k1, is_subjective
from repro.logic.printer import to_text
from repro.logic.syntax import Exists, Not, free_variables, predicates_of
from repro.logic.transform import to_admissible_form
from repro.evaluator.demo import DemoEvaluator
from repro.semantics.config import DEFAULT_CONFIG
from repro.semantics.reduction import EpistemicReducer


@dataclass(frozen=True)
class ConstraintViolation:
    """A failed constraint, with optional witness tuples.

    ``witnesses`` holds parameter tuples (ordered by the violated
    constraint's witness-query variables) that demonstrate the failure —
    for ``∀x. K emp(x) ⊃ ∃y. K ss(x, y)`` a witness is an employee known to
    the database with no known number.
    """

    constraint: object
    witnesses: Tuple[tuple, ...] = ()
    message: str = ""

    def __str__(self):
        rendered = to_text(self.constraint)
        if not self.witnesses:
            return f"violated: {rendered}"
        witnesses = ", ".join(
            "(" + ", ".join(p.name for p in witness) + ")" for witness in self.witnesses
        )
        return f"violated: {rendered} — witnesses: {witnesses}"


@dataclass(frozen=True)
class ConstraintReport:
    """The outcome of checking a constraint set.

    ``fallbacks`` is populated by the violation-view path
    (:mod:`repro.constraints.views`): one
    :class:`~repro.constraints.compile.CompilationFallback` per constraint
    that could not be compiled into the incremental view and was checked
    from scratch instead — the machine-readable *reason* the ISSUE asks the
    check result to surface.  The plain from-scratch checker always reports
    an empty tuple (everything is "from scratch" there)."""

    satisfied: bool
    violations: Tuple[ConstraintViolation, ...] = ()
    checked: int = 0
    fallbacks: Tuple = ()

    def __bool__(self):
        return self.satisfied


class IntegrityChecker:
    """Checks KFOPCE integrity constraints against a FOPCE database."""

    def __init__(self, constraints=(), config=DEFAULT_CONFIG, strategy="reduction"):
        if strategy not in ("reduction", "demo"):
            raise ValueError("strategy must be 'reduction' or 'demo'")
        self.config = config
        self.strategy = strategy
        self.constraints = []
        for constraint in constraints:
            self.add(constraint)

    # -- constraint management ------------------------------------------------
    def add(self, constraint):
        """Register a constraint.  First-order constraints are accepted but a
        warning marker is attached to the report message when they are
        checked, since the paper argues they are almost always intended
        modally (use :func:`repro.constraints.modalize.modalize_constraint`)."""
        self.constraints.append(constraint)
        return constraint

    def remove(self, constraint):
        """Remove a previously registered constraint."""
        self.constraints.remove(constraint)

    # -- checking ----------------------------------------------------------------
    def check(self, theory, constraints=None, with_witnesses=True, witness_limit=10):
        """Check *theory* against the registered (or supplied) constraints.

        Returns a :class:`ConstraintReport`; when *with_witnesses* is set the
        violations carry up to *witness_limit* witness tuples extracted from
        the negated constraint (``None`` lifts the cap — the differential
        harness uses that to compare full witness sets against the view).
        """
        active = list(self.constraints if constraints is None else constraints)
        if not active:
            return ConstraintReport(satisfied=True, violations=(), checked=0)
        theory = list(theory)
        reducer = EpistemicReducer(theory, config=self.config, queries=active)
        violations = []
        for constraint in active:
            if self._holds(constraint, theory, reducer):
                continue
            witnesses = ()
            if with_witnesses:
                witnesses = self._witnesses(constraint, reducer, limit=witness_limit)
            message = "" if not is_first_order(constraint) else (
                "constraint is first-order; the paper's reading would modalize it"
            )
            violations.append(
                ConstraintViolation(constraint=constraint, witnesses=witnesses, message=message)
            )
        return ConstraintReport(
            satisfied=not violations, violations=tuple(violations), checked=len(active)
        )

    def check_update(self, theory, added=(), removed=(), constraints=None, view=None):
        """Incremental re-checking (discussion item 4): given that *theory*
        satisfied the constraints before the update, re-check only the
        constraints that mention a predicate touched by the update.

        Without a *view* this is the classical relevance filter of Nicolas
        (1982) over a from-scratch re-check; it is sound for the constraint
        forms produced by this package because a constraint whose predicates
        are untouched by the update cannot change truth value — the models of
        the unchanged predicates' atoms are unchanged.

        With a *view* (a :class:`~repro.constraints.views.ViolationView`
        maintained over the same database) the re-check becomes an O(delta)
        read: the view previews the batch through its materialized violation
        rules and only the constraints outside the compilable fragment are
        re-evaluated from scratch — the returned report's ``fallbacks``
        names them and why.
        """
        # Mirror Transaction.commit: each staged retraction removes one
        # occurrence from the sentence list, so a duplicated sentence stays
        # in the previewed theory until its last occurrence is retracted.
        pending = {}
        for sentence in removed:
            pending[sentence] = pending.get(sentence, 0) + 1
        updated_theory = []
        for sentence in theory:
            if pending.get(sentence, 0) > 0:
                pending[sentence] -= 1
                continue
            updated_theory.append(sentence)
        updated_theory += list(added)
        if view is not None:
            return view.preview_report(added, removed), updated_theory
        touched = set()
        for sentence in list(added) + list(removed):
            touched |= {name for name, _ in predicates_of(sentence)}
        active = list(self.constraints if constraints is None else constraints)
        relevant = [
            c for c in active if {name for name, _ in predicates_of(c)} & touched
        ]
        report = self.check(updated_theory, constraints=relevant)
        return report, updated_theory

    # -- internals --------------------------------------------------------------
    def _holds(self, constraint, theory, reducer):
        if self.strategy == "reduction" or not is_subjective(to_admissible_form(constraint)):
            return reducer.entails(constraint)
        admissible = to_admissible_form(constraint)
        if not is_admissible(admissible):
            return reducer.entails(constraint)
        evaluator = DemoEvaluator(theory, config=self.config, prover=reducer.prover)
        return evaluator.succeeds(admissible)

    def _witnesses(self, constraint, reducer, limit=10):
        """Extract witnesses by stripping the leading negation of the
        constraint's admissible form and asking for the answers to the
        existential body."""
        admissible = to_admissible_form(constraint)
        if not isinstance(admissible, Not):
            return ()
        body = admissible.body
        # Strip one layer of existentials to expose the witness variables.
        witness_variables = []
        while isinstance(body, Exists):
            witness_variables.append(body.variable)
            body = body.body
        if not witness_variables:
            return ()
        answer = reducer.answers(body)
        ordered = sorted(
            {v.name for v in free_variables(body)} & {v.name for v in witness_variables}
        )
        if not answer.bindings:
            return ()
        # answer.variables is sorted by name; project onto the witness ones.
        projection = [answer.variables.index(name) for name in ordered]
        witnesses = []
        for binding in answer.bindings[:limit]:
            witnesses.append(tuple(binding[i] for i in projection))
        return tuple(witnesses)
