"""Incrementally maintained violation views over an epistemic database.

The checker makes Definition 3.5 literal — constraint checking is query
evaluation — but re-evaluates every constraint from scratch on every check.
A :class:`ViolationView` compiles the constraint set with
:mod:`repro.constraints.compile` and materializes the resulting
``__violation__<id>(witness...)`` rules through a
:class:`~repro.datalog.incremental.MaterializedModel` over the database's
ground-atomic EDB, subscribed to the PR 3 update listeners.  Checking then
becomes a read:

* :meth:`check` probes the maintained violation buckets — O(touched
  buckets), no evaluation;
* :meth:`preview_report` answers "would this batch violate anything?" at
  commit time as a side-effect-free O(delta) peek through the incremental
  maintenance machinery;
* :meth:`add_delta_listener` streams *net violation deltas* (constraint id →
  witness tuples appearing/disappearing) to subscribers —
  :class:`~repro.constraints.triggers.TriggerManager` fires off these instead
  of polling.

Two fallback layers keep the view's verdicts identical to the from-scratch
checker (the differential harness in ``tests/test_constraints_views.py``
proves this):

* **compile-time** — constraints outside the Datalog fragment (see the
  boundary table in :mod:`repro.constraints.compile`) are routed to the
  from-scratch checker; the report's ``fallbacks`` carries the
  machine-readable reason;
* **run-time** — the compiled rules are exact only for the Prolog-like
  (ground-atomic) reading of the database, so a compiled constraint whose
  predicates are touched by any *non-atomic* sentence (a disjunction, an
  existential, ...) is also re-checked from scratch for as long as such
  sentences are present, with reason ``non-atomic-sentences``.
"""

from repro.constraints.checker import (
    ConstraintReport,
    ConstraintViolation,
    IntegrityChecker,
)
from repro.constraints.compile import (
    VIOLATION_PREFIX,
    CompilationFallback,
    compile_constraints,
)
from repro.datalog.incremental import MaterializedModel
from repro.datalog.program import DatalogProgram
from repro.db.view import _ground_atoms, _occurrence_counts
from repro.logic.substitution import substitute
from repro.obs.tracing import NOOP_TRACER
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    Forall,
    Iff,
    Implies,
    Know,
    Not,
    Or,
    free_variables,
    predicates_of,
)
from repro.logic.terms import Parameter, Variable
from repro.logic.transform import to_admissible_form


def _is_ground_atom(sentence):
    return isinstance(sentence, Atom) and all(
        isinstance(arg, Parameter) for arg in sentence.args
    )


def _predicate_names(sentence):
    return {name for name, _ in predicates_of(sentence)}


def _support_atoms(formula, positive, out):
    """Collect the atoms of *formula* that occur in positive polarity —
    the facts whose joint presence makes the (instantiated) violation body
    true, and whose retraction therefore removes the violation."""
    if isinstance(formula, Atom):
        if positive:
            out.append(formula)
    elif isinstance(formula, Know):
        if positive:
            _support_atoms(formula.body, True, out)
    elif isinstance(formula, Not):
        _support_atoms(formula.body, not positive, out)
    elif isinstance(formula, (And, Or)):
        _support_atoms(formula.left, positive, out)
        _support_atoms(formula.right, positive, out)
    elif isinstance(formula, Implies):
        _support_atoms(formula.left, not positive, out)
        _support_atoms(formula.right, positive, out)
    elif isinstance(formula, (Forall, Exists)):
        _support_atoms(formula.body, positive, out)
    elif isinstance(formula, Iff):
        # Either polarity could carry the violation; no sound syntactic
        # support exists, so contribute none (the caller falls back to
        # reporting the violation as irreparable).
        pass
    # Equals / Top / Bottom carry no retractable support.


def violation_support(constraint, witness=()):
    """The *support* of one violation witness: the atoms (instantiated at
    *witness*) whose presence in the database makes *constraint* fail there.

    The constraint's admissible form is ``~ exists x̄. body`` — exactly what
    :class:`~repro.constraints.checker.IntegrityChecker` and
    :mod:`repro.constraints.compile` negate to find witnesses — so the
    witness tuple binds the existential variables (sorted by name, matching
    both witness extractors) and the positive atoms of the instantiated body
    are the facts the violation rests on.  Retracting any of them removes
    this witness, which is what makes these the *retraction candidates* of
    the belief-revision layer (:mod:`repro.revision`).

    Atoms that keep free variables (an inner existential of the body) are
    returned as patterns; callers match them against the database.  Returns
    ``()`` when the constraint has no extractable support (not in negated
    existential form, or witness arity mismatch).
    """
    admissible = to_admissible_form(constraint)
    if not isinstance(admissible, Not):
        return ()
    body = admissible.body
    witness_variables = []
    while isinstance(body, Exists):
        witness_variables.append(body.variable)
        body = body.body
    free_names = {v.name for v in free_variables(body)}
    ordered = sorted({v.name for v in witness_variables} & free_names)
    if witness and len(ordered) != len(witness):
        return ()
    by_name = {variable.name: variable for variable in witness_variables}
    mapping = {by_name[name]: value for name, value in zip(ordered, witness)}
    instantiated = substitute(body, mapping) if mapping else body
    collected = []
    _support_atoms(instantiated, True, collected)
    seen, support = set(), []
    for candidate in collected:
        if candidate not in seen:
            seen.add(candidate)
            support.append(candidate)
    return tuple(support)


class ViolationView:
    """A continuously maintained map from constraints to their violations.

    Example::

        db = EpistemicDatabase(facts, constraints=constraints)
        view = ViolationView(db)
        view.check().satisfied          # probe of the violation buckets
        with db.transaction() as txn:
            txn.tell("emp(Fred)")
            report = view.preview_report(*txn.pending)   # O(delta) peek

    ``strategy`` / ``shards`` / ``planner`` / ``storage`` configure the
    maintaining :class:`~repro.datalog.incremental.MaterializedModel`
    exactly as for :class:`~repro.db.view.DatalogView`; the default is the
    columnar indexed engine.  ``checker`` is the
    :class:`~repro.constraints.checker.IntegrityChecker` used for fallback
    constraints (the database passes its own so strategy/config agree).

    The view stays subscribed to the database until :meth:`close`.
    """

    def __init__(self, database, constraints=None, config=None, strategy="indexed",
                 shards=None, planner=None, storage="columnar", checker=None):
        self._database = database
        active = list(database.constraints() if constraints is None else constraints)
        self._constraints = active
        self._compiled_set = compile_constraints(active)
        self._by_id = {c.constraint_id: c for c in self._compiled_set.compiled}
        self._by_predicate = self._compiled_set.by_predicate()
        config = database.config if config is None else config
        self._checker = checker if checker is not None else IntegrityChecker(
            constraints=active, config=config
        )
        self._delta_listeners = []

        program = DatalogProgram()
        for rule in self._compiled_set.rules():
            program.add_rule(rule)
        for compiled in self._compiled_set.compiled:
            program.declare_output(compiled.predicate, len(compiled.witnesses))
        self._nonatomic = {}
        self._occurrences = {}
        for sentence in database.sentences():
            if _is_ground_atom(sentence):
                count = self._occurrences.get(sentence, 0)
                self._occurrences[sentence] = count + 1
                if count == 0:
                    program.add_fact(sentence)
            else:
                self._count_nonatomic(sentence, +1)
        self._materialized = MaterializedModel(
            program, strategy=strategy, shards=shards, planner=planner, storage=storage
        )
        # Maintenance rounds driven by this view show up in the database's
        # trace (the wrapped engine defaults to the no-op tracer).
        self._materialized.engine.tracer = getattr(
            database, "tracer", self._materialized.engine.tracer
        )
        database.add_update_listener(self._on_update)

    # -- introspection ------------------------------------------------------
    @property
    def materialized(self):
        """The underlying :class:`~repro.datalog.incremental.MaterializedModel`."""
        return self._materialized

    @property
    def compiled(self):
        """The :class:`~repro.constraints.compile.CompiledConstraintSet`."""
        return self._compiled_set

    @property
    def fallbacks(self):
        """Compile-time :class:`~repro.constraints.compile.CompilationFallback`
        entries (the run-time ``non-atomic-sentences`` ones appear on check
        reports only, since they come and go with the offending sentences)."""
        return self._compiled_set.fallbacks

    def constraint_id_of(self, constraint):
        """The id (``c<index>``) the view assigned to *constraint*."""
        compiled = self._compiled_set.compiled_for(constraint)
        if compiled is not None:
            return compiled.constraint_id
        fallback = self._compiled_set.fallback_for(constraint)
        if fallback is not None:
            return fallback.constraint_id
        raise KeyError(f"not a constraint of this view: {constraint!r}")

    # -- checking -----------------------------------------------------------
    def check(self, with_witnesses=True, witness_limit=None):
        """Check the database against the constraint set by *reading* the
        maintained view (plus a from-scratch pass over the fallback
        constraints, if any).  Returns a
        :class:`~repro.constraints.checker.ConstraintReport` whose
        ``fallbacks`` records every constraint that was not answered by the
        view and why."""
        tracer = getattr(self._database, "tracer", NOOP_TRACER)
        with tracer.span("violations.check"):
            return self._report(
                lambda compiled: self._read_witnesses(self._materialized, compiled),
                self._database.sentences,
                self._runtime_nonatomic(),
                with_witnesses=with_witnesses,
                witness_limit=witness_limit,
            )

    def preview_report(self, additions=(), retractions=(), with_witnesses=True,
                       witness_limit=None):
        """The report :meth:`check` would produce if the batch were applied —
        computed as a side-effect-free O(delta) peek: the violation buckets
        are probed *inside* the maintenance round trip (via the ``reader``
        hook of :meth:`~repro.datalog.incremental.MaterializedModel.peek`),
        so neither the maintained state nor the engine cache changes and no
        full model is ever built."""
        additions = list(additions)
        retractions = list(retractions)
        # Mirror Transaction.commit + _on_update exactly: each retraction
        # removes one occurrence from the sentence list, and the EDB fact
        # only disappears once no occurrence is left.  The occurrence counts
        # are maintained incrementally, so this stays O(delta).
        staged = _occurrence_counts(retractions)
        deletions = [
            atom
            for atom, count in staged.items()
            if self._occurrences.get(atom, 0) <= count
        ]
        insertions = _ground_atoms(additions)

        nonatomic = dict(self._nonatomic)
        for sentence in retractions:
            if not _is_ground_atom(sentence):
                for name in _predicate_names(sentence):
                    nonatomic[name] = nonatomic.get(name, 0) - 1
        for sentence in additions:
            if not _is_ground_atom(sentence):
                for name in _predicate_names(sentence):
                    nonatomic[name] = nonatomic.get(name, 0) + 1
        nonatomic_names = {name for name, count in nonatomic.items() if count > 0}

        def fallback_theory():
            # Only materialized when a fallback constraint actually needs a
            # from-scratch check; mirrors the commit's retraction discipline —
            # each staged retraction removes ONE occurrence from the sentence
            # list, so a duplicated sentence survives until its last
            # occurrence is retracted (set-based removal would drop every
            # occurrence and could judge a still-violating post-state
            # satisfied — the differential harness caught exactly that).
            pending = {}
            for sentence in retractions:
                pending[sentence] = pending.get(sentence, 0) + 1
            theory = []
            for sentence in self._database.sentences():
                if pending.get(sentence, 0) > 0:
                    pending[sentence] -= 1
                    continue
                theory.append(sentence)
            return theory + additions

        def read(compiled_constraints):
            def reader(model):
                return {
                    compiled.constraint_id: self._read_witnesses(model, compiled)
                    for compiled in compiled_constraints
                }

            return self._materialized.peek(
                insertions=insertions, deletions=deletions, reader=reader
            )

        tracer = getattr(self._database, "tracer", NOOP_TRACER)
        with tracer.span(
            "violations.preview",
            additions=len(additions),
            retractions=len(retractions),
        ):
            return self._report(
                read,
                fallback_theory,
                nonatomic_names,
                with_witnesses=with_witnesses,
                witness_limit=witness_limit,
                batched=True,
            )

    def violations(self):
        """The current violations as ``{constraint_id: (witness, ...)}`` —
        compiled constraints only, read straight off the maintained index."""
        return {
            compiled.constraint_id: self._read_witnesses(self._materialized, compiled)
            for compiled in self._compiled_set.compiled
        }

    def retraction_candidates(self, report, protected=()):
        """Map each violation of *report* to the database sentences it rests
        on: for every witness, :func:`violation_support` instantiates the
        constraint's violation body and the atoms currently present in the
        database (minus *protected*) are returned, ordered and de-duplicated.
        This is the raw material of minimal-retraction planning — the
        belief-revision layer picks the least entrenched of these."""
        protected_set = set(protected)
        candidates = []
        seen = set()
        for violation in report.violations:
            for witness in violation.witnesses or ((),):
                for pattern in violation_support(violation.constraint, witness):
                    if not _is_ground_atom(pattern):
                        continue
                    if pattern in protected_set or pattern in seen:
                        continue
                    if self._occurrences.get(pattern, 0) > 0:
                        seen.add(pattern)
                        candidates.append(pattern)
        return tuple(candidates)

    # -- delta subscriptions ------------------------------------------------
    def add_delta_listener(self, listener):
        """Subscribe ``listener(added, removed)`` to net violation deltas:
        both arguments map constraint ids to tuples of witness tuples that
        appeared / disappeared with an applied database update.  Only applied
        changes notify — rollbacks and rejected batches never do — and only
        when the violation set actually changed."""
        self._delta_listeners.append(listener)
        return listener

    def remove_delta_listener(self, listener):
        """Unsubscribe a previously added delta listener."""
        self._delta_listeners.remove(listener)

    # -- lifecycle ------------------------------------------------------------
    def close(self):
        """Unsubscribe from the database; the view stops updating."""
        self._database.remove_update_listener(self._on_update)

    # -- internals ------------------------------------------------------------
    def _count_nonatomic(self, sentence, delta):
        for name in _predicate_names(sentence):
            self._nonatomic[name] = self._nonatomic.get(name, 0) + delta

    def _runtime_nonatomic(self):
        return {name for name, count in self._nonatomic.items() if count > 0}

    def _read_witnesses(self, model, compiled):
        """All witness tuples of one compiled constraint, sorted, read from
        the (possibly peeked) maintained index."""
        goal = Atom(
            compiled.predicate,
            tuple(Variable(f"w{i}") for i in range(len(compiled.witnesses))),
        )
        answers = model.query(goal, mode="materialized")
        witnesses = {
            tuple(binding[variable] for variable in goal.args) for binding in answers
        }
        return tuple(sorted(witnesses, key=lambda w: tuple(p.name for p in w)))

    def _report(self, read, fallback_theory, nonatomic_names, with_witnesses=True,
                witness_limit=None, batched=False):
        """Assemble a :class:`ConstraintReport`: compiled constraints whose
        predicates stay inside the atomic reading come from the view (via
        *read*), everything else from the from-scratch checker.
        *fallback_theory* is a thunk, only called when a fallback constraint
        actually needs the sentence list."""
        view_constraints, runtime_fallbacks = [], []
        for compiled in self._compiled_set.compiled:
            if compiled.edb_predicates & nonatomic_names:
                runtime_fallbacks.append(
                    CompilationFallback(
                        constraint=compiled.constraint,
                        constraint_id=compiled.constraint_id,
                        code="non-atomic-sentences",
                        message=(
                            "predicates "
                            + ", ".join(sorted(compiled.edb_predicates & nonatomic_names))
                            + " are touched by non-atomic sentences; the compiled "
                            "rules only cover the ground-atomic reading"
                        ),
                    )
                )
            else:
                view_constraints.append(compiled)

        if batched:
            view_witnesses = read(view_constraints) if view_constraints else {}
        else:
            view_witnesses = {
                compiled.constraint_id: read(compiled)
                for compiled in view_constraints
            }

        fallbacks = list(self._compiled_set.fallbacks) + runtime_fallbacks
        fallback_constraints = [fallback.constraint for fallback in fallbacks]
        scratch = None
        if fallback_constraints:
            scratch = self._checker.check(
                fallback_theory(),
                constraints=fallback_constraints,
                with_witnesses=with_witnesses,
                witness_limit=witness_limit,
            )
        scratch_by_constraint = {}
        if scratch is not None:
            for violation in scratch.violations:
                scratch_by_constraint[violation.constraint] = violation

        fallback_ids = {fallback.constraint_id for fallback in fallbacks}
        violations = []
        for index, constraint in enumerate(self._constraints):
            constraint_id = f"c{index}"
            if constraint_id in fallback_ids:
                violation = scratch_by_constraint.get(constraint)
                if violation is not None:
                    violations.append(violation)
                continue
            witnesses = view_witnesses.get(constraint_id, ())
            if not witnesses:
                continue
            if witness_limit is not None:
                witnesses = witnesses[:witness_limit]
            violations.append(
                ConstraintViolation(
                    constraint=constraint,
                    witnesses=witnesses if with_witnesses else (),
                )
            )
        return ConstraintReport(
            satisfied=not violations,
            violations=tuple(violations),
            checked=len(self._constraints),
            fallbacks=tuple(fallbacks),
        )

    def _on_update(self, added, removed):
        # A retraction only deletes the EDB fact once no occurrence of the
        # sentence is left; an assertion only inserts on the first
        # occurrence.  Counts are maintained here rather than recomputed, so
        # the whole notification is O(delta).
        deletions = []
        for sentence in removed:
            if not _is_ground_atom(sentence):
                self._count_nonatomic(sentence, -1)
                continue
            count = self._occurrences.get(sentence, 0) - 1
            if count <= 0:
                self._occurrences.pop(sentence, None)
                if count == 0:
                    deletions.append(sentence)
            else:
                self._occurrences[sentence] = count
        insertions = []
        for sentence in added:
            if not _is_ground_atom(sentence):
                self._count_nonatomic(sentence, +1)
                continue
            count = self._occurrences.get(sentence, 0)
            self._occurrences[sentence] = count + 1
            if count == 0:
                insertions.append(sentence)
        if not insertions and not deletions:
            return
        result = self._materialized.apply(insertions, deletions)
        if not self._delta_listeners:
            return
        added_deltas = self._violation_deltas(result.derived_added)
        removed_deltas = self._violation_deltas(result.derived_removed)
        if not added_deltas and not removed_deltas:
            return
        for listener in list(self._delta_listeners):
            listener(added_deltas, removed_deltas)

    def _violation_deltas(self, derived):
        deltas = {}
        for atom in derived:
            compiled = self._by_predicate.get(atom.predicate)
            if compiled is not None:
                deltas.setdefault(compiled.constraint_id, []).append(tuple(atom.args))
        return {
            constraint_id: tuple(
                sorted(witnesses, key=lambda w: tuple(p.name for p in w))
            )
            for constraint_id, witnesses in deltas.items()
        }

    def __repr__(self):
        return (
            f"ViolationView({len(self._compiled_set.compiled)} compiled, "
            f"{len(self._compiled_set.fallbacks)} fallbacks over {self._database!r})"
        )
