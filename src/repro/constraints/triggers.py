"""Procedural attachment: triggers tied to integrity constraints.

The paper's discussion (Section 8, item 5) points at the intimate connection
between integrity constraints and the procedural-attachment mechanisms of
knowledge representation languages: a procedure that fires on update, checks
whether a condition holds in the new state, and possibly reacts (asking the
user for a missing social-security entry, say) is "a procedural version of
the integrity constraint".

:class:`TriggerManager` implements that connection for this engine:

* a :class:`Trigger` pairs a KFOPCE *condition* (typically the negation of a
  constraint — "there is a known employee with no known ss#") with an
  *action* callable that receives the witnesses;
* triggers fire after updates; firing may enqueue further updates, which are
  applied and may fire further triggers, up to a configurable cascade depth
  (the paper's "such changes may trigger other procedures, and so on").

Two firing disciplines coexist:

* **polling** (:meth:`TriggerManager.fire`) — the original mechanism:
  re-evaluate every condition against the updated database after each
  update;
* **delta-driven** (:meth:`TriggerManager.register_violation` +
  :meth:`TriggerManager.watch`) — a trigger attached to a registered
  constraint and a maintained
  :class:`~repro.constraints.views.ViolationView`: it fires exactly once
  per *net new* violation witness streamed off the view's maintenance
  deltas, with no evaluation at all.  Rollbacks and rejected batches never
  reach the view, so they never fire anything.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.logic.syntax import free_variables
from repro.semantics.config import DEFAULT_CONFIG
from repro.semantics.reduction import EpistemicReducer


@dataclass
class Trigger:
    """A condition/action pair evaluated after every update.

    The *condition* is a KFOPCE formula; when the updated database entails it
    for at least one binding of its free variables, the *action* is invoked
    with ``(database_session, witnesses)`` where *witnesses* is the tuple of
    answer bindings.  The action may return an iterable of new FOPCE
    sentences to assert (the cascade).
    """

    name: str
    condition: object
    action: Callable[[object, Tuple[tuple, ...]], Optional[list]]
    enabled: bool = True
    #: Delta-driven triggers (``register_violation``) are fired by
    #: :meth:`TriggerManager.watch` subscriptions off violation-view deltas;
    #: the polling :meth:`TriggerManager.fire` skips them so one trigger
    #: never reports the same violation through both disciplines.
    on_violation: bool = False

    def __str__(self):
        state = "enabled" if self.enabled else "disabled"
        kind = "on-violation, " if self.on_violation else ""
        return f"Trigger({self.name}, {kind}{state})"


@dataclass
class TriggerFiring:
    """A record of one trigger firing (kept in the manager's log)."""

    trigger: str
    witnesses: Tuple[tuple, ...]
    cascaded_assertions: Tuple[object, ...] = ()


class TriggerManager:
    """Evaluates triggers after updates and applies their cascades."""

    def __init__(self, triggers=(), config=DEFAULT_CONFIG, max_cascade_depth=5):
        self.triggers: List[Trigger] = list(triggers)
        self.config = config
        self.max_cascade_depth = max_cascade_depth
        self.log: List[TriggerFiring] = []
        self._watched = []
        self._delta_depth = 0

    def register(self, name, condition, action):
        """Register and return a new trigger."""
        trigger = Trigger(name=name, condition=condition, action=action)
        self.triggers.append(trigger)
        return trigger

    def register_violation(self, name, constraint, action):
        """Register a delta-driven trigger tied to a registered integrity
        *constraint*: once a view is attached with :meth:`watch`, the
        *action* is invoked as ``action(session, witnesses)`` with exactly
        the witness tuples that newly violate the constraint — once per net
        violation delta, never on rollback or on a rejected batch, and with
        no condition re-evaluation at all."""
        trigger = Trigger(
            name=name, condition=constraint, action=action, on_violation=True
        )
        self.triggers.append(trigger)
        return trigger

    def watch(self, view, session=None):
        """Attach this manager to a
        :class:`~repro.constraints.views.ViolationView`: its maintenance
        deltas drive every ``on_violation`` trigger whose constraint the
        view maintains.  *session* is the database the actions receive (and
        cascaded assertions go to); it defaults to the view's own database.
        Returns the subscribed listener; :meth:`unwatch` detaches it."""
        database = view._database if session is None else session

        def listener(added, removed):
            self._fire_violation_deltas(database, view, added)

        view.add_delta_listener(listener)
        self._watched.append((view, listener))
        return listener

    def unwatch(self, view):
        """Detach every listener previously attached to *view*."""
        kept = []
        for watched_view, listener in self._watched:
            if watched_view is view:
                view.remove_delta_listener(listener)
            else:
                kept.append((watched_view, listener))
        self._watched = kept

    def enable(self, name, enabled=True):
        """Enable or disable a trigger by name."""
        for trigger in self.triggers:
            if trigger.name == name:
                trigger.enabled = enabled
                return trigger
        raise ReproError(f"no trigger named {name!r}")

    def fire(self, session, depth=0):
        """Evaluate every enabled *polling* trigger against *session* (an
        :class:`~repro.db.database.EpistemicDatabase`), apply cascaded
        assertions, and recurse while anything changed.  Delta-driven
        (``on_violation``) triggers are skipped — those fire off the watched
        view's deltas, not by re-evaluation.

        Returns the list of :class:`TriggerFiring` records produced by this
        round (including cascades).
        """
        if depth > self.max_cascade_depth:
            raise ReproError(
                f"trigger cascade exceeded the maximum depth of {self.max_cascade_depth}"
            )
        firings = []
        pending_assertions = []
        polling = [t for t in self.triggers if not t.on_violation]
        if not polling:
            return firings
        reducer = EpistemicReducer(
            session.sentences(), config=self.config, queries=[t.condition for t in polling]
        )
        for trigger in polling:
            if not trigger.enabled:
                continue
            condition = trigger.condition
            if free_variables(condition):
                answer = reducer.answers(condition)
                if not answer.bindings:
                    continue
                witnesses = answer.bindings
            else:
                if not reducer.entails(condition):
                    continue
                witnesses = ((),)
            cascaded = trigger.action(session, witnesses) or []
            cascaded = tuple(cascaded)
            firings.append(
                TriggerFiring(trigger=trigger.name, witnesses=witnesses, cascaded_assertions=cascaded)
            )
            pending_assertions.extend(cascaded)
        self.log.extend(firings)
        if pending_assertions:
            for sentence in pending_assertions:
                session.tell(sentence, check_constraints=False, fire_triggers=False)
            firings.extend(self.fire(session, depth=depth + 1))
        return firings

    def _fire_violation_deltas(self, session, view, added):
        """Fire the ``on_violation`` triggers matching one net violation
        delta (constraint id → newly violating witness tuples).  Cascaded
        assertions are applied immediately; because the view is notified
        synchronously by ``tell``, any violations they introduce re-enter
        here — ``_delta_depth`` bounds that recursion like the polling
        cascade depth does."""
        if not added:
            return []
        if self._delta_depth > self.max_cascade_depth:
            raise ReproError(
                f"trigger cascade exceeded the maximum depth of {self.max_cascade_depth}"
            )
        firings = []
        pending_assertions = []
        for trigger in self.triggers:
            if not trigger.on_violation or not trigger.enabled:
                continue
            try:
                constraint_id = view.constraint_id_of(trigger.condition)
            except KeyError:
                continue
            witnesses = added.get(constraint_id)
            if not witnesses:
                continue
            cascaded = tuple(trigger.action(session, witnesses) or ())
            firings.append(
                TriggerFiring(
                    trigger=trigger.name,
                    witnesses=witnesses,
                    cascaded_assertions=cascaded,
                )
            )
            pending_assertions.extend(cascaded)
        self.log.extend(firings)
        if pending_assertions:
            self._delta_depth += 1
            try:
                for sentence in pending_assertions:
                    session.tell(sentence, check_constraints=False, fire_triggers=False)
            finally:
                self._delta_depth -= 1
        return firings
