"""Procedural attachment: triggers tied to integrity constraints.

The paper's discussion (Section 8, item 5) points at the intimate connection
between integrity constraints and the procedural-attachment mechanisms of
knowledge representation languages: a procedure that fires on update, checks
whether a condition holds in the new state, and possibly reacts (asking the
user for a missing social-security entry, say) is "a procedural version of
the integrity constraint".

:class:`TriggerManager` implements that connection for this engine:

* a :class:`Trigger` pairs a KFOPCE *condition* (typically the negation of a
  constraint — "there is a known employee with no known ss#") with an
  *action* callable that receives the witnesses;
* triggers fire after updates; firing may enqueue further updates, which are
  applied and may fire further triggers, up to a configurable cascade depth
  (the paper's "such changes may trigger other procedures, and so on").
"""

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.logic.syntax import free_variables
from repro.semantics.config import DEFAULT_CONFIG
from repro.semantics.reduction import EpistemicReducer


@dataclass
class Trigger:
    """A condition/action pair evaluated after every update.

    The *condition* is a KFOPCE formula; when the updated database entails it
    for at least one binding of its free variables, the *action* is invoked
    with ``(database_session, witnesses)`` where *witnesses* is the tuple of
    answer bindings.  The action may return an iterable of new FOPCE
    sentences to assert (the cascade).
    """

    name: str
    condition: object
    action: Callable[[object, Tuple[tuple, ...]], Optional[list]]
    enabled: bool = True

    def __str__(self):
        state = "enabled" if self.enabled else "disabled"
        return f"Trigger({self.name}, {state})"


@dataclass
class TriggerFiring:
    """A record of one trigger firing (kept in the manager's log)."""

    trigger: str
    witnesses: Tuple[tuple, ...]
    cascaded_assertions: Tuple[object, ...] = ()


class TriggerManager:
    """Evaluates triggers after updates and applies their cascades."""

    def __init__(self, triggers=(), config=DEFAULT_CONFIG, max_cascade_depth=5):
        self.triggers: List[Trigger] = list(triggers)
        self.config = config
        self.max_cascade_depth = max_cascade_depth
        self.log: List[TriggerFiring] = []

    def register(self, name, condition, action):
        """Register and return a new trigger."""
        trigger = Trigger(name=name, condition=condition, action=action)
        self.triggers.append(trigger)
        return trigger

    def enable(self, name, enabled=True):
        """Enable or disable a trigger by name."""
        for trigger in self.triggers:
            if trigger.name == name:
                trigger.enabled = enabled
                return trigger
        raise ReproError(f"no trigger named {name!r}")

    def fire(self, session, depth=0):
        """Evaluate every enabled trigger against *session* (an
        :class:`~repro.db.database.EpistemicDatabase`), apply cascaded
        assertions, and recurse while anything changed.

        Returns the list of :class:`TriggerFiring` records produced by this
        round (including cascades).
        """
        if depth > self.max_cascade_depth:
            raise ReproError(
                f"trigger cascade exceeded the maximum depth of {self.max_cascade_depth}"
            )
        firings = []
        pending_assertions = []
        reducer = EpistemicReducer(
            session.sentences(), config=self.config, queries=[t.condition for t in self.triggers]
        )
        for trigger in self.triggers:
            if not trigger.enabled:
                continue
            condition = trigger.condition
            if free_variables(condition):
                answer = reducer.answers(condition)
                if not answer.bindings:
                    continue
                witnesses = answer.bindings
            else:
                if not reducer.entails(condition):
                    continue
                witnesses = ((),)
            cascaded = trigger.action(session, witnesses) or []
            cascaded = tuple(cascaded)
            firings.append(
                TriggerFiring(trigger=trigger.name, witnesses=witnesses, cascaded_assertions=cascaded)
            )
            pending_assertions.extend(cascaded)
        self.log.extend(firings)
        if pending_assertions:
            for sentence in pending_assertions:
                session.tell(sentence, check_constraints=False, fire_triggers=False)
            firings.extend(self.fire(session, depth=depth + 1))
        return firings
