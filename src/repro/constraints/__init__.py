"""Integrity constraints (Section 3 of the paper).

The paper's central conceptual claim: integrity constraints are statements
about what the database *knows*, not about the external world, so they are
KFOPCE sentences and checking them is exactly query evaluation
(Definition 3.5).  This subpackage provides:

* :mod:`repro.constraints.definitions` — all five notions of a database
  satisfying a constraint that the paper compares (consistency, entailment,
  completion-consistency, completion-entailment, epistemic entailment), so
  the Section 3 counter-examples can be reproduced mechanically;
* :mod:`repro.constraints.modalize` — the systematic first-order → modal
  rewriting that produces the paper's readings (Examples 3.1–3.5);
* :mod:`repro.constraints.library` — ready-made constraint templates
  (mandatory attributes, disjointness, totality, typed relations, functional
  dependencies);
* :mod:`repro.constraints.checker` — an :class:`IntegrityChecker` that
  validates a database against a constraint set, reports violations with
  witnesses, and supports the incremental re-checking and procedural
  triggers sketched in the paper's discussion section;
* :mod:`repro.constraints.compile` — the translation of modalized
  admissible constraints into stratified Datalog *violation rules*
  (``__violation__<id>(witness...)``), with a machine-readable fragment
  boundary for everything that cannot be compiled;
* :mod:`repro.constraints.views` — :class:`ViolationView`, the compiled
  rules materialized and incrementally maintained over a database's update
  stream, making commit-time constraint checking an O(delta) read.
"""

from repro.constraints.definitions import (
    SatisfactionDefinition,
    satisfies,
    satisfies_completion_consistency,
    satisfies_completion_entailment,
    satisfies_consistency,
    satisfies_entailment,
    satisfies_epistemic,
)
from repro.constraints.modalize import modalize_constraint
from repro.constraints.library import (
    disjoint_properties,
    known_instances_typed,
    mandatory_attribute,
    mandatory_known_attribute,
    total_property,
    unique_attribute,
)
from repro.constraints.checker import (
    ConstraintReport,
    ConstraintViolation,
    IntegrityChecker,
)
from repro.constraints.compile import (
    CompilationFallback,
    CompiledConstraint,
    CompiledConstraintSet,
    compile_constraint,
    compile_constraints,
    is_compilable,
)
from repro.constraints.views import ViolationView

__all__ = [
    "CompilationFallback",
    "CompiledConstraint",
    "CompiledConstraintSet",
    "ConstraintReport",
    "ConstraintViolation",
    "IntegrityChecker",
    "SatisfactionDefinition",
    "ViolationView",
    "compile_constraint",
    "compile_constraints",
    "is_compilable",
    "disjoint_properties",
    "known_instances_typed",
    "mandatory_attribute",
    "mandatory_known_attribute",
    "modalize_constraint",
    "satisfies",
    "satisfies_completion_consistency",
    "satisfies_completion_entailment",
    "satisfies_consistency",
    "satisfies_entailment",
    "satisfies_epistemic",
    "total_property",
    "unique_attribute",
]
