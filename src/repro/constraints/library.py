"""A library of ready-made integrity constraints.

Each function returns a KFOPCE sentence in the paper's style; the docstrings
cite the example in Section 3 that the template generalises.  All returned
constraints are subjective K1 sentences and, after
:func:`repro.logic.transform.to_admissible_form`, admissible — so ``demo``
evaluates them soundly (Result 5.1).
"""

from repro.logic.builders import conj, equals, exists, forall, implies, knows, pred, var
from repro.logic.syntax import Atom, Not
from repro.logic.terms import Variable


def mandatory_known_attribute(entity_predicate, attribute_predicate):
    """Example 3.1: every known *entity* must have a known *attribute* entry.

    ``mandatory_known_attribute("emp", "ss")`` produces
    ``∀x. K emp(x) ⊃ ∃y. K ss(x, y)`` — the paper's reading of "every
    employee must have a social security number".
    """
    x, y = Variable("x"), Variable("y")
    return forall(
        "x",
        implies(
            knows(Atom(entity_predicate, (x,))),
            exists("y", knows(Atom(attribute_predicate, (x, y)))),
        ),
    )


def mandatory_attribute(entity_predicate, attribute_predicate):
    """Example 3.4: every known *entity* must be known to have *some*
    attribute value, without the value being a known individual.

    ``mandatory_attribute("emp", "ss")`` produces
    ``∀x. K emp(x) ⊃ K ∃y. ss(x, y)``.
    """
    x, y = Variable("x"), Variable("y")
    return forall(
        "x",
        implies(
            knows(Atom(entity_predicate, (x,))),
            knows(exists("y", Atom(attribute_predicate, (x, y)))),
        ),
    )


def disjoint_properties(first_predicate, second_predicate):
    """Example 3.1 (numbered 3.2 in the text): the database may never assign
    both properties to one individual.

    ``disjoint_properties("male", "female")`` produces
    ``∀x. ~K (male(x) & female(x))``.
    """
    x = Variable("x")
    return forall(
        "x",
        Not(knows(conj([Atom(first_predicate, (x,)), Atom(second_predicate, (x,))]))),
    )


def total_property(entity_predicate, first_predicate, second_predicate):
    """Example 3.2: every known entity must be known to have one of the two
    properties.

    ``total_property("person", "male", "female")`` produces
    ``∀x. K person(x) ⊃ (K male(x) | K female(x))``.
    """
    x = Variable("x")
    return forall(
        "x",
        implies(
            knows(Atom(entity_predicate, (x,))),
            knows(Atom(first_predicate, (x,))) | knows(Atom(second_predicate, (x,))),
        ),
    )


def known_instances_typed(relation_predicate, *argument_constraints):
    """Example 3.3: known instances of a relation must have arguments of the
    right (known) types.

    ``known_instances_typed("mother", ("person", "female"), ("person",))``
    produces
    ``∀x,y. K mother(x, y) ⊃ K (person(x) & female(x) & person(y))``.
    Each positional entry lists the unary type predicates required of that
    argument.
    """
    variables = [Variable(chr(ord("x") + i)) for i in range(len(argument_constraints))]
    typing_atoms = []
    for variable, types in zip(variables, argument_constraints):
        for type_predicate in types:
            typing_atoms.append(Atom(type_predicate, (variable,)))
    antecedent = knows(Atom(relation_predicate, tuple(variables)))
    consequent = knows(conj(typing_atoms)) if typing_atoms else antecedent
    return forall([v.name for v in variables], implies(antecedent, consequent))


def unique_attribute(attribute_predicate):
    """Example 3.5: a functional dependency stated epistemically — known
    attribute values for the same key are known to be equal.

    ``unique_attribute("ss")`` produces
    ``∀x,y,z. (K ss(x, y) & K ss(x, z)) ⊃ K y = z``.
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return forall(
        ["x", "y", "z"],
        implies(
            conj([knows(Atom(attribute_predicate, (x, y))), knows(Atom(attribute_predicate, (x, z)))]),
            knows(equals(y, z)),
        ),
    )


def referential_integrity(source_predicate, source_position, target_predicate, arity=2):
    """A common database constraint in the paper's style: the value in
    *source_position* of every known source tuple must be a known member of
    the unary target predicate.

    ``referential_integrity("Teach", 1, "course")`` produces
    ``∀x1,x2. K Teach(x1, x2) ⊃ K course(x2)`` (positions are 0-based).
    """
    variables = [Variable(f"x{i + 1}") for i in range(arity)]
    return forall(
        [v.name for v in variables],
        implies(
            knows(Atom(source_predicate, tuple(variables))),
            knows(Atom(target_predicate, (variables[source_position],))),
        ),
    )
