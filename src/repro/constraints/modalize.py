"""Turning first-order constraints into their modal (epistemic) readings.

Section 3 argues that a first-order constraint such as

    ∀x. emp(x) ⊃ ∃y. ss#(x, y)                                     (1)

is really intended as a statement about the *contents of the database*:
"every employee **known** to the database must have a social security number
**also known** to the database", i.e.

    ∀x. K emp(x) ⊃ ∃y. K ss#(x, y)

:func:`modalize_constraint` performs that systematic rewriting:

* every atom in a *positive* context that constrains what must be present is
  read as "known" (wrapped in ``K``);
* antecedent atoms are likewise read as "known" (the constraint only fires
  for individuals the database knows about);
* an existential block can optionally be kept outside ``K`` — the
  Example 3.4 reading "the employee must be known to have *some* number,
  without the number itself being a known individual" — by passing
  ``known_witness=False``.

The result is a K1 subjective sentence (every atom ends up under exactly one
``K``), which Section 5.3 identifies as the natural syntactic home of
integrity constraints.
"""

from repro.logic.syntax import (
    And,
    Atom,
    Bottom,
    Equals,
    Exists,
    Forall,
    Iff,
    Implies,
    Know,
    Not,
    Or,
    Top,
)
from repro.exceptions import NotFirstOrderError
from repro.logic.classify import is_first_order


def modalize_constraint(constraint, known_witness=True):
    """Return the modal reading of the first-order *constraint*.

    With ``known_witness=True`` (default) every atom is individually wrapped
    in ``K`` — the Example 3.1/3.5 style, where even the witnesses of
    existential quantifiers must be known individuals.  With
    ``known_witness=False`` an existential quantifier and its scope are
    wrapped as a block (``K ∃y. ss#(x, y)``) — the Example 3.4 style, which
    only requires the database to know *that* a witness exists.
    """
    if not is_first_order(constraint):
        raise NotFirstOrderError(
            "modalize_constraint expects a first-order constraint; it already mentions K"
        )
    return _modalize(constraint, known_witness)


def _modalize(formula, known_witness):
    if isinstance(formula, (Atom, Equals)):
        return Know(formula)
    if isinstance(formula, (Top, Bottom)):
        return formula
    if isinstance(formula, Not):
        return Not(_modalize(formula.body, known_witness))
    if isinstance(formula, (And, Or, Implies, Iff)):
        return type(formula)(
            _modalize(formula.left, known_witness), _modalize(formula.right, known_witness)
        )
    if isinstance(formula, Forall):
        return Forall(formula.variable, _modalize(formula.body, known_witness))
    if isinstance(formula, Exists):
        if known_witness:
            return Exists(formula.variable, _modalize(formula.body, known_witness))
        # Example 3.4: the database must know the existential holds, without
        # the witness being a known individual.
        return Know(formula)
    raise TypeError(f"unknown formula node {formula!r}")


def demodalize_constraint(constraint):
    """Strip every ``K`` from a modal constraint, recovering a first-order
    reading.  Together with :func:`modalize_constraint` this gives the
    round-trip used in tests and in the closed-world collapse (Theorem 7.1,
    where the distinction disappears anyway)."""
    from repro.logic.transform import remove_know

    return remove_know(constraint)
