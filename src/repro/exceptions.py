"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParseError(ReproError):
    """Raised when the formula parser cannot turn text into a formula."""

    def __init__(self, message, text=None, position=None):
        super().__init__(message)
        self.text = text
        self.position = position


class NotFirstOrderError(ReproError):
    """Raised when a FOPCE (first-order) formula was required but the
    argument mentions the ``K`` operator."""


class NotASentenceError(ReproError):
    """Raised when a closed formula (sentence) was required but the argument
    has free variables."""


class NotSafeError(ReproError):
    """Raised when a formula fails the safety requirement of Definition 5.1."""


class NotAdmissibleError(ReproError):
    """Raised when a formula fails the admissibility requirement of
    Definition 5.3 (and the evaluator was asked to validate its input)."""


class NotSubjectiveError(ReproError):
    """Raised when a subjective formula (Definition 5.2) was required."""


class NotElementaryError(ReproError):
    """Raised when an elementary theory (Definition 6.3) was required."""


class UnsatisfiableTheoryError(ReproError):
    """Raised by operations whose preconditions require a satisfiable theory
    (e.g. Theorem 5.1 assumes Σ satisfiable) when the theory is inconsistent."""


class UniverseTooLargeError(ReproError):
    """Raised when an exhaustive procedure (model enumeration, KFOPCE validity
    checking) would have to enumerate more candidates than its configured
    limit allows."""


class StratificationError(ReproError):
    """Raised when a Datalog program with negation cannot be stratified."""


class UnsafeRuleError(ReproError):
    """Raised when a Datalog rule violates range restriction (safety):
    every variable of the head and of every negated body literal must occur
    in some positive body literal.  ``diagnostics`` carries the structured
    :class:`~repro.datalog.analyze.Diagnostic` objects (one per unbound
    variable) that produced the message, so runtime rejection and static
    linting report through one format."""

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics or ())


class ProgramAnalysisError(ReproError):
    """Raised by the static analyzer (:mod:`repro.datalog.analyze`) when a
    program is rejected under ``check="strict"`` — or by the columnar
    evaluation path when the analysis signatures it was handed no longer
    describe the program's facts.  ``diagnostics`` carries the structured
    :class:`~repro.datalog.analyze.Diagnostic` objects behind the message."""

    def __init__(self, message, diagnostics=None):
        super().__init__(message)
        self.diagnostics = tuple(diagnostics or ())


class ProgramAnalysisWarning(UserWarning):
    """Emitted (via :mod:`warnings`) when ``check="warn"`` — the engine
    default — finds error-severity diagnostics but evaluation proceeds
    anyway; ``check="strict"`` turns the same findings into
    :class:`ProgramAnalysisError`."""


class MagicRewriteError(ReproError):
    """Raised when a goal cannot be answered by magic-set rewriting — the
    goal predicate is extensional, or the rewritten program loses
    stratifiability (negation becomes entangled with the binding-passing
    recursion).  ``DatalogEngine.query(mode="auto")`` catches this and falls
    back to full materialization; ``mode="magic"`` lets it propagate."""


class EvaluationDepthError(ReproError):
    """Raised when the demo evaluator exceeds its recursion/step budget,
    which indicates a (possibly) non-terminating query outside the
    completeness fragment of Section 6."""


class ConstraintCompilationError(ReproError):
    """Raised by :func:`repro.constraints.compile.compile_constraint` when a
    constraint falls outside the Datalog-compilable fragment.  ``code`` is a
    short machine-readable reason (``"first-order"``, ``"negated-equality"``,
    ``"not-k1"``, ...) that callers surface as the fallback reason on check
    results; ``constraint`` is the offending formula."""

    def __init__(self, message, code="uncompilable", constraint=None):
        super().__init__(message)
        self.code = code
        self.constraint = constraint


class ConstraintViolationError(ReproError):
    """Raised by strict update operations when a change would leave the
    database violating one of its integrity constraints."""

    def __init__(self, message, violations=None):
        super().__init__(message)
        self.violations = tuple(violations or ())


class RevisionError(ReproError):
    """Raised by the belief-change operators (:mod:`repro.revision`) when a
    revision cannot be carried out: a violated constraint has no retractable
    support (the new information conflicts with the constraints on its own),
    the greedy repair loop fails to converge, or the revised base would be
    unsatisfiable.  The database is left untouched.  ``violations`` carries
    the :class:`~repro.constraints.checker.ConstraintViolation` objects that
    could not be resolved, when there are any."""

    def __init__(self, message, violations=None):
        super().__init__(message)
        self.violations = tuple(violations or ())


class UnknownPredicateError(ReproError):
    """Raised by the relational layer when a statement refers to a relation
    that is not part of the schema."""


class ArityMismatchError(ReproError):
    """Raised when a predicate/relation is used with the wrong number of
    arguments."""
